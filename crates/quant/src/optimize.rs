//! Plan optimizer: a pass pipeline that rewrites an [`ExecutionPlan`]
//! into a cheaper, bit-identical twin.
//!
//! The compiled IR out of [`ExecutionPlan::compile`] is a faithful
//! transcription of the lowered layer list: every
//! `Conv/Gemm → Activation → Requantize` chain makes one full pass over
//! its output *per step*, and every `Flatten` burns a ping-pong copy whose
//! only effect is a shape change `Tensor::reset_to` could absorb. This
//! module is the optimizer stage between lowering and plan emission —
//! independent passes over [`PlanParts`] (the same raw form
//! [`crate::verify`] analyzes):
//!
//! 1. **[`OptPass::FuseEpilogues`]** — folds elementwise
//!    `Activation`/`Requantize` consumers into the producing
//!    `Conv`/`Gemm`, emitting [`StepOp::FusedConv`]/[`StepOp::FusedGemm`]
//!    steps whose epilogue the engine applies in place: one pass over the
//!    output instead of up to three.
//! 2. **[`OptPass::EliminateCopies`]** — removes `Flatten` copies whose
//!    readers can take the un-flattened buffer directly (`FusedGemm` reads
//!    its source flat), plus identity reshapes.
//! 3. **[`OptPass::EliminateDeadValues`]** — drops steps whose results
//!    never reach the plan output, then renumbers SSA values densely.
//! 4. **[`OptPass::RepackArena`]** — re-runs liveness-driven greedy buffer
//!    assignment over the rewritten step list, shrinking the arena
//!    high-water mark the shorter plan actually needs.
//!
//! Every pass transforms the plan at the SSA-value level and then
//! re-allocates buffers with the exact allocator `compile` uses, so each
//! pass *individually* yields a plan that is `verify`-clean and produces
//! bit-identical logits (the epilogue kernels share their arithmetic with
//! the standalone step kernels — see [`crate::graph::apply_epilogue`]).
//! `tests/plan_optimize.rs` pins both properties per pass and for the full
//! pipeline.

use crate::graph::{Epilogue, ExecutionPlan, PlanStep, PostOp, StepOp};
use crate::verify::PlanParts;

/// One optimizer pass. Passes are independent: each maps a valid plan to a
/// valid plan, in any order — [`optimize`] runs them in the canonical
/// fuse → copy-elim → DVE → repack order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptPass {
    /// Fuse elementwise `Activation`/`Requantize` consumers into their
    /// producing `Conv`/`Gemm` step.
    FuseEpilogues,
    /// Remove `Flatten`/identity-reshape copies by letting readers take
    /// the source buffer directly.
    EliminateCopies,
    /// Drop steps whose results never reach the output; renumber values
    /// densely.
    EliminateDeadValues,
    /// Re-run greedy liveness-driven buffer assignment to shrink the
    /// arena.
    RepackArena,
}

impl OptPass {
    /// Stable kebab-case pass name (bench JSON keys, logs).
    pub fn name(&self) -> &'static str {
        match self {
            OptPass::FuseEpilogues => "fuse-epilogues",
            OptPass::EliminateCopies => "eliminate-copies",
            OptPass::EliminateDeadValues => "eliminate-dead-values",
            OptPass::RepackArena => "repack-arena",
        }
    }
}

/// The canonical full pipeline, in application order.
pub const ALL_PASSES: [OptPass; 4] = [
    OptPass::FuseEpilogues,
    OptPass::EliminateCopies,
    OptPass::EliminateDeadValues,
    OptPass::RepackArena,
];

/// Plan measurements after one pass — what the `throughput` bench reports
/// per pass into `BENCH_throughput.json`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PassStats {
    /// [`OptPass::name`] of the pass that just ran.
    pub pass: &'static str,
    /// Step count after the pass.
    pub plan_steps: usize,
    /// Arena high-water mark after the pass, in f32 elements (sum of
    /// `buffer_sizes`).
    pub high_water_elems: usize,
}

/// Arena high-water mark of a plan in f32 elements.
pub fn high_water_elems(plan: &ExecutionPlan) -> usize {
    plan.buffer_sizes().iter().sum()
}

/// Runs the full canonical pass pipeline. Infallible by construction: a
/// pass that cannot apply leaves the plan unchanged, and an internal
/// inconsistency falls back to the input plan (and panics under
/// `debug_assertions` — the per-pass test suite keeps this path dead).
pub fn optimize(plan: &ExecutionPlan) -> ExecutionPlan {
    optimize_with_stats(plan).0
}

/// [`optimize`], also reporting per-pass step-count / high-water stats.
pub fn optimize_with_stats(plan: &ExecutionPlan) -> (ExecutionPlan, Vec<PassStats>) {
    let mut current = plan.clone();
    let mut stats = Vec::with_capacity(ALL_PASSES.len());
    for pass in ALL_PASSES {
        current = run_pass(&current, pass);
        stats.push(PassStats {
            pass: pass.name(),
            plan_steps: current.steps().len(),
            high_water_elems: high_water_elems(&current),
        });
    }
    (current, stats)
}

/// Runs one pass. Same fallback contract as [`optimize`].
pub fn run_pass(plan: &ExecutionPlan, pass: OptPass) -> ExecutionPlan {
    match run_pass_parts(PlanParts::from(plan), pass) {
        Ok(optimized) => optimized,
        Err(e) => {
            debug_assert!(false, "optimizer pass {} broke the plan: {e}", pass.name());
            plan.clone()
        }
    }
}

/// Runs one pass over raw plan parts (the verifier's borrowed view),
/// yielding a freshly buffer-allocated plan.
///
/// # Errors
///
/// The [`ExecutionPlan::from_parts`] re-validation message when the
/// rewritten step list violates a plan invariant — which the pass
/// algorithms are designed (and tested) never to do on a verify-clean
/// input.
pub fn run_pass_parts(parts: PlanParts<'_>, pass: OptPass) -> Result<ExecutionPlan, String> {
    let mut plan = ValuePlan::from_parts(&parts);
    match pass {
        OptPass::FuseEpilogues => fuse_epilogues(&mut plan),
        OptPass::EliminateCopies => eliminate_copies(&mut plan),
        OptPass::EliminateDeadValues => eliminate_dead_values(&mut plan),
        OptPass::RepackArena => {} // allocation below *is* the pass
    }
    plan.allocate()
}

// ---------------------------------------------------------------------------
// Value-level working form
// ---------------------------------------------------------------------------

/// One step stripped of buffer assignments — pure SSA dataflow.
#[derive(Debug, Clone)]
struct ValueStep {
    op: StepOp,
    dims: Vec<usize>,
    value: usize,
    src_values: Vec<usize>,
}

/// A plan at the SSA-value level. Passes rewrite this form; buffers are
/// re-derived afterwards by [`ValuePlan::allocate`], so no pass ever has
/// to reason about arena recycling.
struct ValuePlan {
    input_dims: Vec<usize>,
    output_dims: Vec<usize>,
    steps: Vec<ValueStep>,
    /// The SSA value the plan's output buffer holds at the end.
    output_value: usize,
}

impl ValuePlan {
    fn from_parts(parts: &PlanParts<'_>) -> Self {
        let output_value = parts
            .steps
            .iter()
            .rev()
            .find(|s| s.dst == parts.output_buffer)
            .map(|s| s.value)
            .unwrap_or(0);
        ValuePlan {
            input_dims: parts.input_dims.to_vec(),
            output_dims: parts.output_dims.to_vec(),
            steps: parts
                .steps
                .iter()
                .map(|s| ValueStep {
                    op: s.op,
                    dims: s.dims.clone(),
                    value: s.value,
                    src_values: s.src_values.clone(),
                })
                .collect(),
            output_value,
        }
    }

    /// Uses per value across all steps.
    fn use_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.max_value() + 1];
        for step in &self.steps {
            for &v in &step.src_values {
                counts[v] += 1;
            }
        }
        counts
    }

    fn max_value(&self) -> usize {
        self.steps
            .iter()
            .flat_map(|s| s.src_values.iter().chain(std::iter::once(&s.value)))
            .copied()
            .max()
            .unwrap_or(0)
            .max(self.output_value)
    }

    /// Dims of each SSA value (input value 0 has the input dims).
    fn dims_of(&self) -> Vec<Option<Vec<usize>>> {
        let mut dims = vec![None; self.max_value() + 1];
        dims[0] = Some(self.input_dims.clone());
        for step in &self.steps {
            dims[step.value] = Some(step.dims.clone());
        }
        dims
    }

    /// Greedy liveness-driven buffer assignment — the same allocator
    /// `ExecutionPlan::compile` runs (allocate the output before freeing
    /// inputs, reuse the largest free slot, free a double-read value
    /// once), finalized through `from_parts` so every structural invariant
    /// is re-proven.
    fn allocate(self) -> Result<ExecutionPlan, String> {
        let dims_of = self.dims_of();
        let n = dims_of.len();
        let mut last_use = vec![0usize; n];
        for (i, step) in self.steps.iter().enumerate() {
            for &v in &step.src_values {
                last_use[v] = last_use[v].max(i);
            }
        }
        last_use[self.output_value] = usize::MAX;

        let mut buffer_of = vec![usize::MAX; n];
        let mut buffer_sizes: Vec<usize> = Vec::new();
        let mut free: Vec<usize> = Vec::new();
        let mut alloc = |value: usize, free: &mut Vec<usize>| -> Result<usize, String> {
            let len = dims_of[value]
                .as_ref()
                .ok_or_else(|| format!("value {value} read before any definition"))?
                .iter()
                .try_fold(1usize, |acc, &d| acc.checked_mul(d))
                .ok_or("element count overflow")?;
            let slot = match free
                .iter()
                .enumerate()
                .max_by_key(|(_, &b)| buffer_sizes[b])
                .map(|(i, _)| i)
            {
                Some(i) => free.swap_remove(i),
                None => {
                    buffer_sizes.push(0);
                    buffer_sizes.len() - 1
                }
            };
            buffer_sizes[slot] = buffer_sizes[slot].max(len);
            Ok(slot)
        };
        buffer_of[0] = alloc(0, &mut free)?;
        let mut steps = Vec::with_capacity(self.steps.len());
        for (i, step) in self.steps.iter().enumerate() {
            let dst = alloc(step.value, &mut free)?;
            buffer_of[step.value] = dst;
            let srcs = step
                .src_values
                .iter()
                .map(|&v| {
                    let b = buffer_of[v];
                    if b == usize::MAX {
                        return Err(format!("value {v} read before any definition"));
                    }
                    Ok(b)
                })
                .collect::<Result<Vec<_>, String>>()?;
            steps.push(PlanStep {
                op: step.op,
                srcs,
                dst,
                dims: step.dims.clone(),
                value: step.value,
                src_values: step.src_values.clone(),
            });
            for (slot, &v) in step.src_values.iter().enumerate() {
                if last_use[v] == i && !step.src_values[..slot].contains(&v) {
                    free.push(buffer_of[v]);
                }
            }
        }
        let output_buffer = buffer_of[self.output_value];
        if output_buffer == usize::MAX {
            return Err(format!(
                "output value {} is never defined",
                self.output_value
            ));
        }
        ExecutionPlan::from_parts(
            self.input_dims,
            self.output_dims,
            steps,
            buffer_sizes,
            buffer_of[0],
            output_buffer,
        )
    }
}

// ---------------------------------------------------------------------------
// Pass 1: epilogue fusion
// ---------------------------------------------------------------------------

/// `true` when `op` can absorb another post-op, and the fused/fusable
/// layer index.
fn fusable(op: &StepOp) -> bool {
    match op {
        StepOp::Conv { .. } | StepOp::Gemm { .. } => true,
        StepOp::FusedConv { epilogue, .. } | StepOp::FusedGemm { epilogue, .. } => {
            epilogue.has_room()
        }
        _ => false,
    }
}

/// The post-op an elementwise step fuses as, if it is one.
fn as_post_op(op: &StepOp) -> Option<PostOp> {
    match op {
        StepOp::Activation(kind) => Some(PostOp::Activation(*kind)),
        StepOp::Requantize => Some(PostOp::Requantize),
        _ => None,
    }
}

/// Folds single-use elementwise consumers into their producing Conv/Gemm.
/// Iterates to fixpoint so a `Conv → Activation → Requantize` chain fuses
/// completely (first the activation, then the requantize on the already
/// fused step).
fn fuse_epilogues(plan: &mut ValuePlan) {
    loop {
        let counts = plan.use_counts();
        // Find a consumer step j whose single producer i can absorb it.
        let pair = plan.steps.iter().enumerate().find_map(|(j, consumer)| {
            let post = as_post_op(&consumer.op)?;
            let src = consumer.src_values[0];
            // The producer's value must die at this consumer: exactly one
            // use, and it is not the plan output.
            if counts[src] != 1 || src == plan.output_value {
                return None;
            }
            let i = plan.steps.iter().position(|s| s.value == src)?;
            // `i < j` always holds on a topologically ordered plan; guard
            // anyway so `remove(j)` can never shift the producer index.
            (i < j && fusable(&plan.steps[i].op)).then_some((i, j, post))
        });
        let Some((i, j, post)) = pair else { break };
        let consumer = plan.steps.remove(j);
        let producer = &mut plan.steps[i];
        producer.op = match producer.op {
            StepOp::Conv { layer } => {
                let mut epilogue = Epilogue::new();
                epilogue.push(post);
                StepOp::FusedConv { layer, epilogue }
            }
            StepOp::Gemm { layer } => {
                let mut epilogue = Epilogue::new();
                epilogue.push(post);
                StepOp::FusedGemm { layer, epilogue }
            }
            StepOp::FusedConv {
                layer,
                mut epilogue,
            } => {
                epilogue.push(post);
                StepOp::FusedConv { layer, epilogue }
            }
            StepOp::FusedGemm {
                layer,
                mut epilogue,
            } => {
                epilogue.push(post);
                StepOp::FusedGemm { layer, epilogue }
            }
            other => other, // unreachable: `fusable` gated this
        };
        // The fused step now defines what the consumer defined. Elementwise
        // ops preserve dims, so the producer's dims already match.
        producer.value = consumer.value;
    }
}

// ---------------------------------------------------------------------------
// Pass 2: copy / reshape elimination
// ---------------------------------------------------------------------------

/// Removes `Flatten` steps whose readers can take the un-flattened source
/// directly: GEMM readers become `FusedGemm` (which reads its source
/// flat), and identity reshapes (source already has the target dims)
/// forward to any reader. Iterates to fixpoint for flatten-of-flatten
/// chains.
fn eliminate_copies(plan: &mut ValuePlan) {
    loop {
        let dims_of = plan.dims_of();
        let candidate = plan.steps.iter().enumerate().find_map(|(f, step)| {
            if !matches!(step.op, StepOp::Flatten) || step.value == plan.output_value {
                return None;
            }
            let src_dims = dims_of[step.src_values[0]].as_deref()?;
            let identity = src_dims == step.dims;
            let all_gemm = plan
                .steps
                .iter()
                .filter(|r| r.src_values.contains(&step.value))
                .all(|r| matches!(r.op, StepOp::Gemm { .. } | StepOp::FusedGemm { .. }));
            (identity || all_gemm).then_some(f)
        });
        let Some(f) = candidate else { break };
        let flatten = plan.steps.remove(f);
        let (dead_value, fwd_value) = (flatten.value, flatten.src_values[0]);
        for reader in &mut plan.steps {
            for (slot, v) in reader.src_values.iter_mut().enumerate() {
                if *v == dead_value {
                    *v = fwd_value;
                    // A GEMM whose input lost its flatten must read flat.
                    if slot == 0 {
                        if let StepOp::Gemm { layer } = reader.op {
                            reader.op = StepOp::FusedGemm {
                                layer,
                                epilogue: Epilogue::new(),
                            };
                        }
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Pass 3: dead-value elimination
// ---------------------------------------------------------------------------

/// Drops steps whose results never reach the output value, then renumbers
/// the surviving SSA values densely (input stays 0; step `k` defines value
/// `k + 1`) so downstream consumers see a compact value space.
fn eliminate_dead_values(plan: &mut ValuePlan) {
    let mut needed = vec![false; plan.max_value() + 1];
    needed[plan.output_value] = true;
    for step in plan.steps.iter().rev() {
        if needed[step.value] {
            for &v in &step.src_values {
                needed[v] = true;
            }
        }
    }
    plan.steps.retain(|s| needed[s.value]);

    let mut remap = vec![usize::MAX; plan.max_value() + 1];
    remap[0] = 0;
    for (k, step) in plan.steps.iter().enumerate() {
        remap[step.value] = k + 1;
    }
    for step in &mut plan.steps {
        step.value = remap[step.value];
        for v in &mut step.src_values {
            *v = remap[*v];
        }
    }
    plan.output_value = remap[plan.output_value];
}
