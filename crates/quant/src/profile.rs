//! Per-step plan profiling: where a batch's wall time actually went.
//!
//! [`BatchEngine::run_plan_profiled`](crate::engine::BatchEngine::run_plan_profiled)
//! executes a plan exactly like `run_plan` (bit-identical outputs) while
//! clocking every [`PlanStep`](crate::graph::PlanStep); the result is a
//! [`PlanProfile`] — one [`StepProfile`] per step carrying measured wall
//! time, bytes moved through the arena, the kernel tier the GEMM compiled
//! to, and (when the model is anchored to a hardware target with a cycle
//! model) the simulator's predicted per-image cost, so measured-vs-
//! predicted skew is visible per step. That skew is the input signal the
//! planned auto-tuner (ROADMAP item 4) searches against.
//!
//! Step wall times are summed across worker chunks, so they add up to CPU
//! time; `PlanProfile::total` is the batch's actual wall clock.

use std::fmt;
use std::time::Duration;

/// Measured (and optionally predicted) cost of one plan step.
#[derive(Debug, Clone, PartialEq)]
pub struct StepProfile {
    /// Step index in plan order.
    pub index: usize,
    /// Human-readable label: the op kind plus the layer name for GEMM
    /// steps (e.g. `fused-conv conv1.weight`).
    pub label: String,
    /// Measured time summed over every image and worker (CPU time).
    pub wall: Duration,
    /// Bytes read from source buffers plus bytes written to the
    /// destination, across the whole batch (f32 elements × 4).
    pub bytes_moved: u64,
    /// Kernel tier the step's GEMM plan compiled to (`avx2` / `scalar`),
    /// `None` for weight-free steps.
    pub tier: Option<String>,
    /// Rows on the packed SIMD layout (GEMM steps; 0 otherwise).
    pub packed_rows: usize,
    /// Rows on the dense fallback layout (GEMM steps; 0 otherwise).
    pub dense_rows: usize,
    /// The cycle simulator's predicted per-image cost, when available.
    pub predicted: Option<Duration>,
}

impl StepProfile {
    /// Measured per-image microseconds.
    pub fn measured_us_per_image(&self, images: usize) -> f64 {
        if images == 0 {
            return 0.0;
        }
        self.wall.as_secs_f64() * 1e6 / images as f64
    }
}

/// Aggregated profile of one `run_plan_profiled` batch.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanProfile {
    /// One entry per plan step, in execution order.
    pub steps: Vec<StepProfile>,
    /// Images in the profiled batch.
    pub images: usize,
    /// Wall-clock time of the whole batch (fan-out included).
    pub total: Duration,
    /// Arena high-water mark: the per-worker buffer bytes the plan
    /// reserves (`buffer_sizes` sum × 4).
    pub arena_high_water_bytes: u64,
}

impl PlanProfile {
    /// Sum of the per-step walls (CPU time across workers).
    pub fn step_wall_total(&self) -> Duration {
        self.steps.iter().map(|s| s.wall).sum()
    }

    /// The flat profile as a printable table: one row per step with
    /// measured per-image cost, bytes moved, kernel tier, and the
    /// predicted cost + skew column when a prediction exists.
    pub fn table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "plan profile: {} steps, {} images, total {:.3} ms, arena {} B\n",
            self.steps.len(),
            self.images,
            self.total.as_secs_f64() * 1e3,
            self.arena_high_water_bytes,
        ));
        let has_predictions = self.steps.iter().any(|s| s.predicted.is_some());
        out.push_str(&format!(
            "{:>4}  {:<28} {:>12} {:>12} {:>8} {:>12}",
            "#", "step", "us/image", "bytes", "tier", "rows p/d"
        ));
        if has_predictions {
            out.push_str(&format!(" {:>12} {:>8}", "pred us", "skew"));
        }
        out.push('\n');
        for step in &self.steps {
            let measured = step.measured_us_per_image(self.images);
            out.push_str(&format!(
                "{:>4}  {:<28} {:>12.2} {:>12} {:>8} {:>6}/{:<5}",
                step.index,
                step.label,
                measured,
                step.bytes_moved,
                step.tier.as_deref().unwrap_or("-"),
                step.packed_rows,
                step.dense_rows,
            ));
            if has_predictions {
                match step.predicted {
                    Some(pred) if pred > Duration::ZERO => {
                        let pred_us = pred.as_secs_f64() * 1e6;
                        out.push_str(&format!(" {:>12.2} {:>7.1}x", pred_us, measured / pred_us));
                    }
                    _ => out.push_str(&format!(" {:>12} {:>8}", "-", "-")),
                }
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for PlanProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.table())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step(index: usize, label: &str, wall_us: u64, predicted_us: Option<u64>) -> StepProfile {
        StepProfile {
            index,
            label: label.to_string(),
            wall: Duration::from_micros(wall_us),
            bytes_moved: 1024,
            tier: (predicted_us.is_some()).then(|| "avx2".to_string()),
            packed_rows: 8,
            dense_rows: 0,
            predicted: predicted_us.map(Duration::from_micros),
        }
    }

    #[test]
    fn table_includes_skew_only_when_predictions_exist() {
        let profile = PlanProfile {
            steps: vec![step(0, "conv c1.weight", 100, None)],
            images: 2,
            total: Duration::from_micros(120),
            arena_high_water_bytes: 4096,
        };
        let text = profile.table();
        assert!(text.contains("conv c1.weight"));
        assert!(!text.contains("skew"));

        let profile = PlanProfile {
            steps: vec![step(0, "conv c1.weight", 100, Some(25))],
            images: 2,
            total: Duration::from_micros(120),
            arena_high_water_bytes: 4096,
        };
        let text = profile.table();
        assert!(text.contains("skew"));
        // 100 µs over 2 images = 50 µs/image vs 25 µs predicted = 2.0x.
        assert!(text.contains("2.0x"), "{text}");
    }

    #[test]
    fn step_wall_total_sums_steps() {
        let profile = PlanProfile {
            steps: vec![step(0, "a", 30, None), step(1, "b", 70, None)],
            images: 1,
            total: Duration::from_micros(110),
            arena_high_water_bytes: 0,
        };
        assert_eq!(profile.step_wall_total(), Duration::from_micros(100));
    }
}
