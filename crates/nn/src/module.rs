//! Layer trait and named parameters.

use crate::lower::LayerLowering;
use mixmatch_tensor::Tensor;

/// A trainable parameter: value, gradient accumulator and a stable name.
///
/// Names follow a dotted path convention (`"stage1.block0.conv1.weight"`) so
/// quantization reports can identify layers the way the paper's tables do.
#[derive(Debug, Clone)]
pub struct Param {
    name: String,
    /// Current value. Public: optimizers and the ADMM loop read and write it
    /// freely; `Param` maintains no invariant beyond shape stability.
    pub value: Tensor,
    /// Gradient accumulator, always the same shape as `value`.
    pub grad: Tensor,
}

impl Param {
    /// Creates a parameter with a zeroed gradient.
    pub fn new(name: impl Into<String>, value: Tensor) -> Self {
        let grad = Tensor::zeros(value.dims());
        Param {
            name: name.into(),
            value,
            grad,
        }
    }

    /// The parameter's dotted-path name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Zeroes the gradient accumulator in place.
    pub fn zero_grad(&mut self) {
        self.grad.fill_zero();
    }

    /// Number of scalar elements.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// `true` when the parameter holds no elements.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }
}

/// A differentiable computation stage.
///
/// `forward` caches whatever `backward` will need; `backward` consumes the
/// most recent cache, accumulates parameter gradients, and returns the
/// gradient with respect to the layer input. Layers are stateful by design —
/// training loops drive them strictly in forward-then-backward order.
pub trait Layer {
    /// Runs the layer. `train` selects training behaviour (e.g. batch-norm
    /// batch statistics, dropout).
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor;

    /// Backpropagates `grad_output`, accumulating into parameter `grad`s, and
    /// returns the gradient with respect to the input of the latest
    /// [`forward`](Layer::forward).
    ///
    /// # Panics
    ///
    /// Implementations panic when called without a preceding training-mode
    /// `forward` (no cache).
    fn backward(&mut self, grad_output: &Tensor) -> Tensor;

    /// Immutable access to the layer's parameters. Layers without parameters
    /// return an empty vector.
    fn params(&self) -> Vec<&Param> {
        Vec::new()
    }

    /// Mutable access to the layer's parameters.
    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    /// Zeroes all parameter gradients.
    fn zero_grad(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }

    /// How this layer participates in dataflow lowering
    /// (see [`crate::lower`]): one lowered step, transparent (skipped on
    /// the integer path), or opaque. The default is
    /// [`LayerLowering::Opaque`] — layers the compiled integer path cannot
    /// express keep their containing model plan-free rather than silently
    /// changing semantics.
    fn lowering(&self) -> LayerLowering {
        LayerLowering::Opaque
    }
}

/// A sequence of layers applied in order.
///
/// # Example
///
/// ```
/// use mixmatch_nn::module::{Layer, Sequential};
/// use mixmatch_nn::layers::{Linear, Relu};
/// use mixmatch_tensor::{Tensor, TensorRng};
///
/// let mut rng = TensorRng::seed_from(1);
/// let mut net = Sequential::new();
/// net.push(Linear::new(4, 8, true, &mut rng));
/// net.push(Relu::new());
/// net.push(Linear::new(8, 2, true, &mut rng));
/// let y = net.forward(&Tensor::randn(&[3, 4], &mut rng), false);
/// assert_eq!(y.dims(), &[3, 2]);
/// ```
#[derive(Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Creates an empty pipeline.
    pub fn new() -> Self {
        Sequential { layers: Vec::new() }
    }

    /// Appends a layer.
    pub fn push(&mut self, layer: impl Layer + 'static) -> &mut Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Lowers the pipeline into a dataflow graph by chaining each layer's
    /// [`Layer::lowering`]: `Step` layers append a node, `Transparent`
    /// layers are skipped, and any `Opaque` layer makes the whole pipeline
    /// unlowerable (`None`).
    pub fn lower_graph(&self) -> Option<crate::lower::LoweredGraph> {
        let mut g = crate::lower::GraphBuilder::new();
        let mut x = g.input();
        for layer in &self.layers {
            match layer.lowering() {
                LayerLowering::Step(op) => x = g.push(op, vec![x]),
                LayerLowering::Transparent => {}
                LayerLowering::Opaque => return None,
            }
        }
        Some(g.finish(x))
    }

    /// `true` when the pipeline holds no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }
}

impl Layer for Sequential {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x, train);
        }
        x
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let mut g = grad_output.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    fn params(&self) -> Vec<&Param> {
        self.layers.iter().flat_map(|l| l.params()).collect()
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_mut())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Linear, Relu};
    use mixmatch_tensor::TensorRng;

    #[test]
    fn param_zero_grad_clears() {
        let mut p = Param::new("w", Tensor::ones(&[2, 2]));
        p.grad = Tensor::ones(&[2, 2]);
        p.zero_grad();
        assert!(p.grad.as_slice().iter().all(|&g| g == 0.0));
        assert_eq!(p.name(), "w");
        assert_eq!(p.len(), 4);
    }

    #[test]
    fn sequential_collects_params_in_order() {
        let mut rng = TensorRng::seed_from(0);
        let mut net = Sequential::new();
        net.push(Linear::new(3, 5, true, &mut rng));
        net.push(Relu::new());
        net.push(Linear::new(5, 2, false, &mut rng));
        let names: Vec<String> = net.params().iter().map(|p| p.name().to_string()).collect();
        assert_eq!(names.len(), 3); // w+b, w
        assert_eq!(net.len(), 3);
    }

    #[test]
    fn sequential_forward_backward_shapes() {
        let mut rng = TensorRng::seed_from(1);
        let mut net = Sequential::new();
        net.push(Linear::new(4, 6, true, &mut rng));
        net.push(Relu::new());
        let x = Tensor::randn(&[2, 4], &mut rng);
        let y = net.forward(&x, true);
        let gx = net.backward(&Tensor::ones(y.dims()));
        assert_eq!(gx.dims(), x.dims());
    }

    #[test]
    fn zero_grad_cascades() {
        let mut rng = TensorRng::seed_from(2);
        let mut net = Sequential::new();
        net.push(Linear::new(2, 2, true, &mut rng));
        let x = Tensor::randn(&[1, 2], &mut rng);
        let y = net.forward(&x, true);
        net.backward(&Tensor::ones(y.dims()));
        assert!(net.params()[0].grad.as_slice().iter().any(|&g| g != 0.0));
        net.zero_grad();
        assert!(net
            .params()
            .iter()
            .all(|p| p.grad.as_slice().iter().all(|&g| g == 0.0)));
    }
}
