//! Model lowering: the dataflow IR between a float model and the compiled
//! integer [`ExecutionPlan`](https://docs.rs/mixmatch-quant) —
//! `mixmatch-quant`'s plan compiler consumes this graph.
//!
//! The paper's accelerator executes a network as a topologically-ordered
//! list of dataflow steps (DeepBurning-MixQ and FINN center on the same
//! lowered per-layer graph); [`LoweredGraph`] is that list on the model
//! side. Each node is an [`LoweredOp`] in SSA form: it reads value ids
//! produced by earlier nodes (value `0` is the network input) and defines
//! exactly one new value. GEMM-bearing ops (`Conv`/`Gemm`) reference their
//! weight by parameter name — the same dotted path that keys
//! [`QuantLayerDesc`](crate::quantize::QuantLayerDesc)s — so the plan
//! compiler can join graph nodes to deployment forms without this crate
//! depending on the quantization crate.
//!
//! Models implement [`QuantizableModel::lower`](crate::quantize::QuantizableModel::lower)
//! by walking their own structure through a [`GraphBuilder`];
//! [`Sequential`](crate::module::Sequential) lowers generically through the
//! per-layer [`Layer::lowering`](crate::module::Layer::lowering) hook.

/// SSA value id inside a [`LoweredGraph`]. Value `0` is the network input.
pub type ValueId = usize;

/// Pooling variants the integer path executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolKind {
    /// Non-overlapping max pooling, stride == window.
    Max {
        /// Square window edge.
        window: usize,
    },
    /// Non-overlapping average pooling, stride == window.
    Avg {
        /// Square window edge.
        window: usize,
    },
    /// Global average pooling to a `[C, 1, 1]` map.
    GlobalAvg,
}

/// Elementwise activations the integer path executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActKind {
    /// `max(0, x)`.
    Relu,
    /// `clamp(x, 0, 6)`.
    Relu6,
    /// `x > 0 ? x : 0.1·x` (the YOLO backbone slope).
    LeakyRelu,
}

impl ActKind {
    /// Applies the activation to one value — the single definition both the
    /// float layers and the plan executor share.
    pub fn apply(&self, x: f32) -> f32 {
        match self {
            ActKind::Relu => x.max(0.0),
            ActKind::Relu6 => x.clamp(0.0, 6.0),
            ActKind::LeakyRelu => {
                if x > 0.0 {
                    x
                } else {
                    0.1 * x
                }
            }
        }
    }
}

/// One lowered operation. `Conv`/`Gemm` carry the weight parameter name;
/// everything else is weight-free.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoweredOp {
    /// im2col-driven integer convolution (dense or depthwise — the
    /// referenced layer's geometry decides).
    Conv {
        /// Weight parameter name (joins to a `QuantLayerDesc`).
        name: String,
    },
    /// Integer matrix–vector product (linear layer, no bias on the integer
    /// path).
    Gemm {
        /// Weight parameter name.
        name: String,
    },
    /// Spatial pooling on a `[C, H, W]` map.
    Pool(PoolKind),
    /// Elementwise two-input addition (residual/skip connections).
    ResidualAdd,
    /// Elementwise activation.
    Activation(ActKind),
    /// Collapse any shape to a rank-1 vector.
    Flatten,
    /// Activation-quantizer round trip (quantize → dequantize) with the
    /// deployed model's `ActQuantizer` — the integer twin of a `FakeQuant`
    /// layer.
    Requantize,
}

/// One node: an op reading `inputs` and defining `output`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoweredNode {
    /// The operation.
    pub op: LoweredOp,
    /// Value ids consumed (1 for most ops, 2 for `ResidualAdd`).
    pub inputs: Vec<ValueId>,
    /// Value id defined.
    pub output: ValueId,
}

/// A topologically-ordered lowered dataflow graph in SSA form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoweredGraph {
    nodes: Vec<LoweredNode>,
    output: ValueId,
    values: usize,
}

impl LoweredGraph {
    /// Nodes in execution order.
    pub fn nodes(&self) -> &[LoweredNode] {
        &self.nodes
    }

    /// The value id holding the network output.
    pub fn output(&self) -> ValueId {
        self.output
    }

    /// Total number of SSA values (input + one per node).
    pub fn values(&self) -> usize {
        self.values
    }
}

/// Builder for a [`LoweredGraph`]; see the module docs for the flow.
///
/// # Example
///
/// ```
/// use mixmatch_nn::lower::{ActKind, GraphBuilder};
///
/// let mut g = GraphBuilder::new();
/// let x = g.input();
/// let y = g.conv("stem.weight", x);
/// let y = g.activation(ActKind::Relu, y);
/// let graph = g.finish(y);
/// assert_eq!(graph.nodes().len(), 2);
/// ```
#[derive(Debug, Default)]
pub struct GraphBuilder {
    nodes: Vec<LoweredNode>,
    values: usize,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        GraphBuilder {
            nodes: Vec::new(),
            values: 0,
        }
    }

    /// The network-input value (id 0). Idempotent.
    pub fn input(&mut self) -> ValueId {
        if self.values == 0 {
            self.values = 1;
        }
        0
    }

    /// Appends a node computing `op` from `inputs`, returning its value.
    pub fn push(&mut self, op: LoweredOp, inputs: Vec<ValueId>) -> ValueId {
        let output = self.values;
        self.values += 1;
        self.nodes.push(LoweredNode { op, inputs, output });
        output
    }

    /// Appends an integer convolution referencing weight `name`.
    pub fn conv(&mut self, name: &str, x: ValueId) -> ValueId {
        self.push(LoweredOp::Conv { name: name.into() }, vec![x])
    }

    /// Appends an integer matrix–vector product referencing weight `name`.
    pub fn gemm(&mut self, name: &str, x: ValueId) -> ValueId {
        self.push(LoweredOp::Gemm { name: name.into() }, vec![x])
    }

    /// Appends an elementwise activation.
    pub fn activation(&mut self, kind: ActKind, x: ValueId) -> ValueId {
        self.push(LoweredOp::Activation(kind), vec![x])
    }

    /// Appends a pooling step.
    pub fn pool(&mut self, kind: PoolKind, x: ValueId) -> ValueId {
        self.push(LoweredOp::Pool(kind), vec![x])
    }

    /// Appends an elementwise `a + b`.
    pub fn residual_add(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.push(LoweredOp::ResidualAdd, vec![a, b])
    }

    /// Appends a flatten-to-vector step.
    pub fn flatten(&mut self, x: ValueId) -> ValueId {
        self.push(LoweredOp::Flatten, vec![x])
    }

    /// Appends an activation-quantizer round trip.
    pub fn requantize(&mut self, x: ValueId) -> ValueId {
        self.push(LoweredOp::Requantize, vec![x])
    }

    /// Seals the graph with `output` as the network output.
    ///
    /// # Panics
    ///
    /// Panics when `output` is not a defined value.
    pub fn finish(self, output: ValueId) -> LoweredGraph {
        assert!(output < self.values, "output value {output} is undefined");
        LoweredGraph {
            nodes: self.nodes,
            output,
            values: self.values,
        }
    }
}

/// How one [`Layer`](crate::module::Layer) participates in lowering — the
/// hook [`Sequential`](crate::module::Sequential) lowering dispatches on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LayerLowering {
    /// The layer is one lowered step.
    Step(LoweredOp),
    /// The layer is an identity on the deployed integer path and is skipped
    /// (dropout at inference; batch-norm, whose folding into conv weights
    /// is future work — today's per-layer deployment path omits it the same
    /// way).
    Transparent,
    /// The layer cannot be lowered; the containing model has no plan.
    Opaque,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assigns_ssa_values_in_order() {
        let mut g = GraphBuilder::new();
        let x = g.input();
        assert_eq!(x, 0);
        let a = g.conv("c1.weight", x);
        let b = g.conv("c2.weight", a);
        let s = g.residual_add(b, x);
        let graph = g.finish(s);
        assert_eq!(graph.values(), 4);
        assert_eq!(graph.output(), 3);
        assert_eq!(graph.nodes()[2].inputs, vec![2, 0]);
    }

    #[test]
    #[should_panic(expected = "undefined")]
    fn finishing_on_undefined_value_panics() {
        let g = GraphBuilder::new();
        let _ = g.finish(5);
    }

    #[test]
    fn act_kinds_match_their_float_layers() {
        assert_eq!(ActKind::Relu.apply(-1.0), 0.0);
        assert_eq!(ActKind::Relu6.apply(9.0), 6.0);
        assert_eq!(ActKind::LeakyRelu.apply(-2.0), -0.2);
        assert_eq!(ActKind::LeakyRelu.apply(3.0), 3.0);
    }
}
