//! Loss functions.
//!
//! Each loss returns `(scalar_loss, grad_wrt_input)` in one call — the
//! training loops feed the gradient straight into `Layer::backward`.

use mixmatch_tensor::Tensor;

/// Numerically-stable log-softmax over the last axis of `[B, C]` logits.
fn log_softmax_rows(logits: &Tensor) -> Tensor {
    let (b, c) = (logits.dims()[0], logits.dims()[1]);
    let mut out = Tensor::zeros(&[b, c]);
    for r in 0..b {
        let row = logits.row(r);
        let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let logsum = row.iter().map(|&x| (x - m).exp()).sum::<f32>().ln() + m;
        for (o, &x) in out.row_mut(r).iter_mut().zip(row) {
            *o = x - logsum;
        }
    }
    out
}

/// Softmax cross-entropy over `[B, C]` logits and integer class targets.
///
/// Returns the mean loss and the gradient `(softmax - onehot)/B`.
///
/// # Panics
///
/// Panics when `targets.len()` differs from the batch size or a target is out
/// of range.
pub fn cross_entropy(logits: &Tensor, targets: &[usize]) -> (f32, Tensor) {
    assert_eq!(logits.shape().rank(), 2, "cross_entropy expects [B, C]");
    let (b, c) = (logits.dims()[0], logits.dims()[1]);
    assert_eq!(targets.len(), b, "one target per batch row required");
    let logp = log_softmax_rows(logits);
    let mut loss = 0.0f32;
    let mut grad = Tensor::zeros(&[b, c]);
    let inv_b = 1.0 / b as f32;
    for r in 0..b {
        let t = targets[r];
        assert!(t < c, "target {t} out of range for {c} classes");
        loss -= logp.row(r)[t];
        let g = grad.row_mut(r);
        for (j, gj) in g.iter_mut().enumerate() {
            let p = logp.row(r)[j].exp();
            *gj = (p - if j == t { 1.0 } else { 0.0 }) * inv_b;
        }
    }
    (loss * inv_b, grad)
}

/// Mean-squared error between prediction and target of identical shape.
///
/// Returns `(mean((p-t)^2), 2(p-t)/N)`.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn mse(pred: &Tensor, target: &Tensor) -> (f32, Tensor) {
    let diff = pred - target;
    let n = pred.len() as f32;
    let loss = diff.sq_norm() / n;
    let grad = &diff * (2.0 / n);
    (loss, grad)
}

/// Binary cross-entropy on probabilities in `(0, 1)`, with targets in `[0,1]`.
///
/// Returns the mean loss and its gradient with respect to the probabilities.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn bce(prob: &Tensor, target: &Tensor) -> (f32, Tensor) {
    assert_eq!(prob.dims(), target.dims(), "bce shape mismatch");
    let n = prob.len() as f32;
    let eps = 1e-7f32;
    let mut loss = 0.0f32;
    let mut grad = Tensor::zeros(prob.dims());
    for i in 0..prob.len() {
        let p = prob.as_slice()[i].clamp(eps, 1.0 - eps);
        let t = target.as_slice()[i];
        loss -= t * p.ln() + (1.0 - t) * (1.0 - p).ln();
        grad.as_mut_slice()[i] = (p - t) / (p * (1.0 - p)) / n;
    }
    (loss / n, grad)
}

/// Perplexity from a mean negative-log-likelihood (`exp(nll)`), the PTB
/// language-modelling metric of Table VI.
pub fn perplexity(mean_nll: f32) -> f32 {
    mean_nll.exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mixmatch_tensor::TensorRng;

    #[test]
    fn cross_entropy_uniform_logits() {
        let logits = Tensor::zeros(&[2, 4]);
        let (loss, _) = cross_entropy(&logits, &[0, 3]);
        assert!((loss - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_confident_correct_is_small() {
        let mut logits = Tensor::zeros(&[1, 3]);
        logits.set(&[0, 1], 20.0);
        let (loss, _) = cross_entropy(&logits, &[1]);
        assert!(loss < 1e-6);
    }

    #[test]
    fn cross_entropy_gradient_matches_finite_difference() {
        let mut rng = TensorRng::seed_from(0);
        let logits = Tensor::randn(&[3, 5], &mut rng);
        let targets = [1usize, 4, 0];
        let (_, grad) = cross_entropy(&logits, &targets);
        let h = 1e-2f32;
        for i in 0..logits.len() {
            let mut lp = logits.clone();
            lp.as_mut_slice()[i] += h;
            let mut lm = logits.clone();
            lm.as_mut_slice()[i] -= h;
            let numeric =
                (cross_entropy(&lp, &targets).0 - cross_entropy(&lm, &targets).0) / (2.0 * h);
            assert!(
                (grad.as_slice()[i] - numeric).abs() < 1e-3,
                "grad mismatch at {i}"
            );
        }
    }

    #[test]
    fn cross_entropy_grad_rows_sum_to_zero() {
        let mut rng = TensorRng::seed_from(1);
        let logits = Tensor::randn(&[4, 6], &mut rng);
        let (_, grad) = cross_entropy(&logits, &[0, 1, 2, 3]);
        for r in 0..4 {
            let s: f32 = grad.row(r).iter().sum();
            assert!(s.abs() < 1e-5);
        }
    }

    #[test]
    fn mse_basics() {
        let p = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let t = Tensor::from_vec(vec![0.0, 0.0], &[2]).unwrap();
        let (loss, grad) = mse(&p, &t);
        assert!((loss - 2.5).abs() < 1e-6);
        assert_eq!(grad.as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn bce_at_half_is_ln2() {
        let p = Tensor::full(&[4], 0.5);
        let t = Tensor::from_vec(vec![0.0, 1.0, 0.0, 1.0], &[4]).unwrap();
        let (loss, _) = bce(&p, &t);
        assert!((loss - (2.0f32).ln().abs()).abs() < 1e-5);
    }

    #[test]
    fn bce_gradient_sign() {
        let p = Tensor::full(&[1], 0.8);
        let t_hi = Tensor::full(&[1], 1.0);
        let t_lo = Tensor::full(&[1], 0.0);
        assert!(bce(&p, &t_hi).1.as_slice()[0] < 0.0); // push p up
        assert!(bce(&p, &t_lo).1.as_slice()[0] > 0.0); // push p down
    }

    #[test]
    fn perplexity_of_zero_nll_is_one() {
        assert_eq!(perplexity(0.0), 1.0);
        assert!((perplexity((10.0f32).ln()) - 10.0).abs() < 1e-3);
    }
}
