//! Model-side quantization interface: [`QuantizableModel`].
//!
//! The paper's pipeline treats a network as a list of GEMM-lowered weight
//! matrices (conv filters row-per-output-channel, linear weights, recurrent
//! `W_ih`/`W_hh`). `mixmatch-quant`'s `QuantPipeline` consumes that list
//! uniformly for every model family; this module defines the descriptor
//! type and the trait models implement to expose it, keeping `mixmatch-nn`
//! free of any dependency on the quantization crate.

use crate::layers::Conv2d;
use crate::module::{Layer, Param, Sequential};
use mixmatch_tensor::im2col::ConvGeometry;
use mixmatch_tensor::Tensor;

/// What kind of GEMM operand a quantizable layer is — determines its
/// deployment form (plain integer matrix vs im2col-driven convolution).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuantLayerKind {
    /// A linear / fully-connected weight (`[out, in]`).
    Dense,
    /// A dense convolution in GEMM form (`[Cout, Cin·k·k]`).
    Conv(ConvGeometry),
    /// A depthwise convolution (`groups == channels`, one row per channel).
    DepthwiseConv(ConvGeometry),
    /// A recurrent cell matrix (`W_ih` / `W_hh`), applied once per time step.
    Recurrent,
}

/// Descriptor of one quantizable weight matrix.
///
/// `name` is the parameter's dotted path (`"stage0.block0.conv1.weight"`),
/// the key joining training-time reports to deployment forms.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantLayerDesc {
    /// Parameter name of the weight.
    pub name: String,
    /// Weight-matrix rows (output channels / units).
    pub rows: usize,
    /// Weight-matrix columns (reduction length).
    pub cols: usize,
    /// Operand kind.
    pub kind: QuantLayerKind,
}

impl QuantLayerDesc {
    /// Descriptor for a convolution layer, dense or depthwise according to
    /// its geometry.
    pub fn for_conv(conv: &Conv2d) -> Self {
        let geom = *conv.geometry();
        let kind = if geom.groups == 1 {
            QuantLayerKind::Conv(geom)
        } else {
            QuantLayerKind::DepthwiseConv(geom)
        };
        QuantLayerDesc {
            name: conv.weight().name().to_string(),
            rows: geom.out_channels,
            cols: geom.gemm_k(),
            kind,
        }
    }

    /// Descriptor derived from a bare parameter, when no structural
    /// information is available: recurrent matrices by name suffix,
    /// everything else dense. Returns `None` for non-quantizable parameters.
    pub fn for_param(param: &Param) -> Option<Self> {
        if !is_quantizable(param) {
            return None;
        }
        let name = param.name().to_string();
        let kind = if name.ends_with(".w_ih") || name.ends_with(".w_hh") {
            QuantLayerKind::Recurrent
        } else {
            QuantLayerKind::Dense
        };
        Some(QuantLayerDesc {
            rows: param.value.dims()[0],
            cols: param.value.dims()[1],
            name,
            kind,
        })
    }

    /// The convolution geometry, when the layer is a convolution.
    pub fn geometry(&self) -> Option<&ConvGeometry> {
        match &self.kind {
            QuantLayerKind::Conv(g) | QuantLayerKind::DepthwiseConv(g) => Some(g),
            _ => None,
        }
    }
}

/// Should this parameter be quantized? Rank-2 weights of GEMM-lowered layers
/// — conv/linear `.weight`, recurrent `.w_ih`/`.w_hh` — excluding embeddings
/// (table lookups, not GEMM operands on the accelerator). This is the single
/// source of truth: `mixmatch_quant::admm::default_target_filter` delegates
/// here, so descriptors and training-time reports line up one-to-one.
pub fn is_quantizable(param: &Param) -> bool {
    let name = param.name();
    let is_weight = name.ends_with(".weight") || name.ends_with(".w_ih") || name.ends_with(".w_hh");
    is_weight && param.value.shape().rank() == 2 && !name.starts_with("embedding")
}

/// Inference-mode batched forward for any [`Layer`]-backed model: the float
/// software twin of the integer engine's batched execution
/// (`mixmatch_quant::engine::BatchEngine`). Models implementing
/// [`QuantizableModel`] use this to fulfil
/// [`QuantizableModel::forward_batch`].
pub fn layer_forward_batch<M: Layer + ?Sized>(model: &mut M, inputs: &[Tensor]) -> Vec<Tensor> {
    inputs.iter().map(|x| model.forward(x, false)).collect()
}

/// Derives descriptors from a flat parameter list (the fallback used by the
/// trait's default implementation and by [`Sequential`]).
pub fn descs_from_params(params: &[&Param]) -> Vec<QuantLayerDesc> {
    params
        .iter()
        .filter_map(|p| QuantLayerDesc::for_param(p))
        .collect()
}

/// A model whose quantizable GEMM layers can be enumerated uniformly —
/// the surface `QuantPipeline` drives for ResNet, MobileNet, YOLO and the
/// RNN families alike.
///
/// `model_params` / `model_params_mut` mirror [`crate::module::Layer`]'s
/// accessors under different names so that models which are not `Layer`s
/// (the token-driven RNNs) can still participate, and so that implementing
/// both traits never creates method ambiguity.
pub trait QuantizableModel {
    /// All trainable parameters, in a stable order.
    fn model_params(&self) -> Vec<&Param>;

    /// Mutable access to the same parameters, same order.
    fn model_params_mut(&mut self) -> Vec<&mut Param>;

    /// Descriptors of every quantizable layer. The default derives them from
    /// the parameter list (no conv geometry); structured models override to
    /// attach geometries so convolutions deploy through the im2col path.
    fn quantizable_layers(&self) -> Vec<QuantLayerDesc> {
        descs_from_params(&self.model_params())
    }

    /// Batched float forward in inference mode — `Some(outputs)` with one
    /// output per input, or `None` for models without a single-tensor
    /// forward (the token-driven RNN families). Feed-forward models
    /// override via [`layer_forward_batch`].
    fn forward_batch(&mut self, inputs: &[Tensor]) -> Option<Vec<Tensor>> {
        let _ = inputs;
        None
    }

    /// Lowers the model into the dataflow graph the compiled integer
    /// [`ExecutionPlan`] is built from (see [`crate::lower`]): a
    /// topologically-ordered step list covering convolutions, GEMMs,
    /// pooling, residual adds, activations, flatten and requantization.
    /// `None` for models the plan compiler cannot express (the token-driven
    /// RNN families); the structured CNN families and [`Sequential`]
    /// override this.
    fn lower(&self) -> Option<crate::lower::LoweredGraph> {
        None
    }
}

impl QuantizableModel for Sequential {
    fn model_params(&self) -> Vec<&Param> {
        crate::module::Layer::params(self)
    }

    fn model_params_mut(&mut self) -> Vec<&mut Param> {
        crate::module::Layer::params_mut(self)
    }

    fn forward_batch(&mut self, inputs: &[Tensor]) -> Option<Vec<Tensor>> {
        Some(layer_forward_batch(self, inputs))
    }

    fn lower(&self) -> Option<crate::lower::LoweredGraph> {
        self.lower_graph()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Linear;
    use crate::module::Layer;
    use mixmatch_tensor::{Tensor, TensorRng};

    #[test]
    fn param_descriptors_classify_by_name() {
        let wih = Param::new("lstm0.w_ih", Tensor::zeros(&[16, 4]));
        let desc = QuantLayerDesc::for_param(&wih).expect("recurrent weight");
        assert_eq!(desc.kind, QuantLayerKind::Recurrent);
        assert_eq!((desc.rows, desc.cols), (16, 4));
        let emb = Param::new("embedding.weight", Tensor::zeros(&[10, 4]));
        assert!(QuantLayerDesc::for_param(&emb).is_none());
        let bias = Param::new("fc.bias", Tensor::zeros(&[4]));
        assert!(QuantLayerDesc::for_param(&bias).is_none());
    }

    #[test]
    fn conv_descriptors_carry_geometry() {
        let mut rng = TensorRng::seed_from(0);
        let conv = Conv2d::with_geometry("stem", ConvGeometry::new(3, 8, 3, 1, 1), false, &mut rng);
        let desc = QuantLayerDesc::for_conv(&conv);
        assert_eq!(desc.name, "stem.weight");
        assert_eq!((desc.rows, desc.cols), (8, 27));
        assert!(matches!(desc.kind, QuantLayerKind::Conv(_)));
        let dw = Conv2d::with_geometry("dw", ConvGeometry::depthwise(4, 3, 1, 1), false, &mut rng);
        assert!(matches!(
            QuantLayerDesc::for_conv(&dw).kind,
            QuantLayerKind::DepthwiseConv(_)
        ));
    }

    #[test]
    fn sequential_forward_batch_matches_per_input_forward() {
        let mut rng = TensorRng::seed_from(2);
        let mut net = Sequential::new();
        net.push(Linear::with_name("a", 4, 6, true, &mut rng));
        net.push(crate::layers::Relu::new());
        net.push(Linear::with_name("b", 6, 2, false, &mut rng));
        let inputs: Vec<Tensor> = (0..3).map(|_| Tensor::randn(&[1, 4], &mut rng)).collect();
        let batched = QuantizableModel::forward_batch(&mut net, &inputs).expect("feed-forward");
        assert_eq!(batched.len(), 3);
        for (x, y) in inputs.iter().zip(&batched) {
            let single = net.forward(x, false);
            assert_eq!(y.as_slice(), single.as_slice());
        }
    }

    #[test]
    fn sequential_enumerates_linear_weights() {
        let mut rng = TensorRng::seed_from(1);
        let mut net = Sequential::new();
        net.push(Linear::with_name("a", 4, 8, true, &mut rng));
        net.push(Linear::with_name("b", 8, 2, false, &mut rng));
        let descs = net.quantizable_layers();
        assert_eq!(descs.len(), 2);
        assert_eq!(descs[0].name, "a.weight");
        assert_eq!(descs[1].kind, QuantLayerKind::Dense);
        assert_eq!(net.model_params().len(), net.params().len());
    }
}
