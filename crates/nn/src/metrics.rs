//! Evaluation metrics used by the paper's tables.
//!
//! * Top-1/Top-5 accuracy — Tables II, III, IV, IX.
//! * Perplexity — Table VI (LSTM on PTB); see [`crate::loss::perplexity`].
//! * Phoneme error rate (edit distance) — Table VI (GRU on TIMIT).
//! * IoU and mAP at configurable thresholds — Table V (YOLO on COCO).

use mixmatch_tensor::Tensor;

/// Fraction of rows whose true class appears in the top-`k` logits.
///
/// # Panics
///
/// Panics when `logits` is not `[B, C]`, `targets.len() != B`, or `k == 0`.
pub fn top_k_accuracy(logits: &Tensor, targets: &[usize], k: usize) -> f32 {
    assert_eq!(logits.shape().rank(), 2, "top_k_accuracy expects [B, C]");
    assert!(k > 0, "k must be positive");
    let (b, c) = (logits.dims()[0], logits.dims()[1]);
    assert_eq!(targets.len(), b, "one target per row required");
    let k = k.min(c);
    let mut hits = 0usize;
    for r in 0..b {
        let row = logits.row(r);
        let target_score = row[targets[r]];
        // Count entries strictly greater than the target's score; ties broken
        // in favour of the target (matches common topk semantics closely
        // enough for evaluation).
        let better = row.iter().filter(|&&v| v > target_score).count();
        if better < k {
            hits += 1;
        }
    }
    hits as f32 / b as f32
}

/// Top-1 accuracy shorthand.
pub fn accuracy(logits: &Tensor, targets: &[usize]) -> f32 {
    top_k_accuracy(logits, targets, 1)
}

/// Levenshtein edit distance between two symbol sequences.
pub fn edit_distance(a: &[usize], b: &[usize]) -> usize {
    let (la, lb) = (a.len(), b.len());
    if la == 0 {
        return lb;
    }
    if lb == 0 {
        return la;
    }
    let mut prev: Vec<usize> = (0..=lb).collect();
    let mut curr = vec![0usize; lb + 1];
    for i in 1..=la {
        curr[0] = i;
        for j in 1..=lb {
            let cost = usize::from(a[i - 1] != b[j - 1]);
            curr[j] = (prev[j] + 1).min(curr[j - 1] + 1).min(prev[j - 1] + cost);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[lb]
}

/// Collapses consecutive duplicate symbols (CTC-style) before scoring a
/// phoneme sequence.
pub fn collapse_repeats(seq: &[usize]) -> Vec<usize> {
    let mut out = Vec::with_capacity(seq.len());
    for &s in seq {
        if out.last() != Some(&s) {
            out.push(s);
        }
    }
    out
}

/// Phoneme error rate: total edit distance over total reference length, in
/// percent (lower is better, as in Table VI).
///
/// # Panics
///
/// Panics when the two slices have different lengths or the references are
/// all empty.
pub fn phoneme_error_rate(hyps: &[Vec<usize>], refs: &[Vec<usize>]) -> f32 {
    assert_eq!(hyps.len(), refs.len(), "one hypothesis per reference");
    let mut dist = 0usize;
    let mut total = 0usize;
    for (h, r) in hyps.iter().zip(refs) {
        let hc = collapse_repeats(h);
        let rc = collapse_repeats(r);
        dist += edit_distance(&hc, &rc);
        total += rc.len();
    }
    assert!(total > 0, "empty reference set");
    100.0 * dist as f32 / total as f32
}

/// An axis-aligned box with a confidence score and class, in any consistent
/// coordinate unit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetBox {
    /// Centre x.
    pub cx: f32,
    /// Centre y.
    pub cy: f32,
    /// Width.
    pub w: f32,
    /// Height.
    pub h: f32,
    /// Confidence score (objectness × class probability).
    pub score: f32,
    /// Class id.
    pub class: usize,
}

impl DetBox {
    fn corners(&self) -> (f32, f32, f32, f32) {
        (
            self.cx - self.w / 2.0,
            self.cy - self.h / 2.0,
            self.cx + self.w / 2.0,
            self.cy + self.h / 2.0,
        )
    }
}

/// Intersection-over-union of two boxes.
pub fn iou(a: &DetBox, b: &DetBox) -> f32 {
    let (ax1, ay1, ax2, ay2) = a.corners();
    let (bx1, by1, bx2, by2) = b.corners();
    let ix = (ax2.min(bx2) - ax1.max(bx1)).max(0.0);
    let iy = (ay2.min(by2) - ay1.max(by1)).max(0.0);
    let inter = ix * iy;
    let union = a.w * a.h + b.w * b.h - inter;
    if union <= 0.0 {
        0.0
    } else {
        inter / union
    }
}

/// Greedy non-maximum suppression per class.
pub fn nms(mut boxes: Vec<DetBox>, iou_threshold: f32) -> Vec<DetBox> {
    boxes.sort_by(|a, b| b.score.partial_cmp(&a.score).expect("NaN score"));
    let mut keep: Vec<DetBox> = Vec::new();
    'outer: for b in boxes {
        for k in &keep {
            if k.class == b.class && iou(k, &b) > iou_threshold {
                continue 'outer;
            }
        }
        keep.push(b);
    }
    keep
}

/// Average precision for one class at one IoU threshold using all-point
/// interpolation, given per-image predictions and ground truths.
fn average_precision(
    preds: &[(usize, DetBox)], // (image id, box) — this class only
    gts: &[(usize, DetBox)],
    iou_thresh: f32,
) -> f32 {
    if gts.is_empty() {
        return 0.0;
    }
    let mut order: Vec<usize> = (0..preds.len()).collect();
    order.sort_by(|&a, &b| {
        preds[b]
            .1
            .score
            .partial_cmp(&preds[a].1.score)
            .expect("NaN score")
    });
    let mut matched = vec![false; gts.len()];
    let mut tp = Vec::with_capacity(preds.len());
    for &pi in &order {
        let (img, pbox) = &preds[pi];
        let mut best_iou = 0.0f32;
        let mut best_gt = None;
        for (gi, (gimg, gbox)) in gts.iter().enumerate() {
            if gimg != img || matched[gi] {
                continue;
            }
            let v = iou(pbox, gbox);
            if v > best_iou {
                best_iou = v;
                best_gt = Some(gi);
            }
        }
        if best_iou >= iou_thresh {
            matched[best_gt.expect("gt present when IoU > 0")] = true;
            tp.push(true);
        } else {
            tp.push(false);
        }
    }
    // Precision–recall sweep.
    let mut cum_tp = 0usize;
    let mut curve: Vec<(f32, f32)> = Vec::with_capacity(tp.len()); // (recall, precision)
    for (i, &hit) in tp.iter().enumerate() {
        if hit {
            cum_tp += 1;
        }
        let prec = cum_tp as f32 / (i + 1) as f32;
        let rec = cum_tp as f32 / gts.len() as f32;
        curve.push((rec, prec));
    }
    // All-point interpolated AP.
    let mut ap = 0.0f32;
    let mut prev_rec = 0.0f32;
    let mut i = 0usize;
    while i < curve.len() {
        let rec = curve[i].0;
        let max_prec = curve[i..].iter().map(|&(_, p)| p).fold(0.0f32, f32::max);
        ap += (rec - prev_rec) * max_prec;
        prev_rec = rec;
        // Skip to next recall change.
        while i < curve.len() && curve[i].0 == rec {
            i += 1;
        }
    }
    ap
}

/// Mean average precision over classes at a single IoU threshold
/// (`mAP@0.5` when `iou_thresh == 0.5`).
///
/// `predictions` and `ground_truth` are per-image box lists.
pub fn mean_average_precision(
    predictions: &[Vec<DetBox>],
    ground_truth: &[Vec<DetBox>],
    num_classes: usize,
    iou_thresh: f32,
) -> f32 {
    let mut flat_preds: Vec<(usize, DetBox)> = Vec::new();
    let mut flat_gts: Vec<(usize, DetBox)> = Vec::new();
    for (img, boxes) in predictions.iter().enumerate() {
        flat_preds.extend(boxes.iter().map(|&b| (img, b)));
    }
    for (img, boxes) in ground_truth.iter().enumerate() {
        flat_gts.extend(boxes.iter().map(|&b| (img, b)));
    }
    let mut total = 0.0f32;
    let mut classes_with_gt = 0usize;
    for c in 0..num_classes {
        let preds_c: Vec<(usize, DetBox)> = flat_preds
            .iter()
            .filter(|(_, b)| b.class == c)
            .cloned()
            .collect();
        let gts_c: Vec<(usize, DetBox)> = flat_gts
            .iter()
            .filter(|(_, b)| b.class == c)
            .cloned()
            .collect();
        if gts_c.is_empty() {
            continue;
        }
        classes_with_gt += 1;
        total += average_precision(&preds_c, &gts_c, iou_thresh);
    }
    if classes_with_gt == 0 {
        0.0
    } else {
        total / classes_with_gt as f32
    }
}

/// COCO-style `mAP@0.5:0.95`: the mean of mAP over IoU thresholds
/// 0.50, 0.55, …, 0.95.
pub fn map_coco(
    predictions: &[Vec<DetBox>],
    ground_truth: &[Vec<DetBox>],
    num_classes: usize,
) -> f32 {
    let mut total = 0.0f32;
    let mut n = 0usize;
    let mut t = 0.5f32;
    while t < 0.975 {
        total += mean_average_precision(predictions, ground_truth, num_classes, t);
        n += 1;
        t += 0.05;
    }
    total / n as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn boxed(cx: f32, cy: f32, w: f32, h: f32, score: f32, class: usize) -> DetBox {
        DetBox {
            cx,
            cy,
            w,
            h,
            score,
            class,
        }
    }

    #[test]
    fn topk_basics() {
        let logits = Tensor::from_vec(vec![0.1, 0.9, 0.0, 0.6, 0.3, 0.1], &[2, 3]).unwrap();
        assert_eq!(accuracy(&logits, &[1, 0]), 1.0);
        assert_eq!(accuracy(&logits, &[0, 1]), 0.0);
        assert_eq!(top_k_accuracy(&logits, &[0, 1], 2), 1.0);
    }

    #[test]
    fn edit_distance_known_cases() {
        assert_eq!(edit_distance(&[1, 2, 3], &[1, 2, 3]), 0);
        assert_eq!(edit_distance(&[1, 2, 3], &[1, 3]), 1); // deletion
        assert_eq!(edit_distance(&[1, 2], &[1, 2, 3]), 1); // insertion
        assert_eq!(edit_distance(&[1, 2, 3], &[1, 9, 3]), 1); // substitution
        assert_eq!(edit_distance(&[], &[1, 2]), 2);
    }

    #[test]
    fn collapse_removes_consecutive_dups() {
        assert_eq!(collapse_repeats(&[1, 1, 2, 2, 2, 1]), vec![1, 2, 1]);
        assert_eq!(collapse_repeats(&[]), Vec::<usize>::new());
    }

    #[test]
    fn per_zero_for_perfect_hyps() {
        let r = vec![vec![1, 1, 2, 3]];
        let h = vec![vec![1, 2, 2, 3]];
        assert_eq!(phoneme_error_rate(&h, &r), 0.0);
    }

    #[test]
    fn per_counts_errors() {
        let r = vec![vec![1, 2, 3, 4]]; // collapsed len 4
        let h = vec![vec![1, 2, 3, 9]];
        assert!((phoneme_error_rate(&h, &r) - 25.0).abs() < 1e-5);
    }

    #[test]
    fn iou_identical_is_one() {
        let a = boxed(0.5, 0.5, 0.2, 0.2, 1.0, 0);
        assert!((iou(&a, &a) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn iou_disjoint_is_zero() {
        let a = boxed(0.2, 0.2, 0.1, 0.1, 1.0, 0);
        let b = boxed(0.8, 0.8, 0.1, 0.1, 1.0, 0);
        assert_eq!(iou(&a, &b), 0.0);
    }

    #[test]
    fn iou_half_overlap() {
        let a = boxed(0.0, 0.0, 2.0, 2.0, 1.0, 0);
        let b = boxed(1.0, 0.0, 2.0, 2.0, 1.0, 0);
        // Intersection 2, union 6.
        assert!((iou(&a, &b) - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn nms_suppresses_overlapping_same_class() {
        let boxes = vec![
            boxed(0.5, 0.5, 0.2, 0.2, 0.9, 0),
            boxed(0.51, 0.5, 0.2, 0.2, 0.8, 0),
            boxed(0.5, 0.5, 0.2, 0.2, 0.7, 1), // other class survives
        ];
        let kept = nms(boxes, 0.5);
        assert_eq!(kept.len(), 2);
        assert!((kept[0].score - 0.9).abs() < 1e-6);
    }

    #[test]
    fn perfect_detection_has_map_one() {
        let gt = vec![vec![boxed(0.5, 0.5, 0.2, 0.2, 1.0, 0)]];
        let pred = vec![vec![boxed(0.5, 0.5, 0.2, 0.2, 0.95, 0)]];
        let map = mean_average_precision(&pred, &gt, 1, 0.5);
        assert!((map - 1.0).abs() < 1e-6);
    }

    #[test]
    fn missed_detection_lowers_map() {
        let gt = vec![vec![
            boxed(0.2, 0.2, 0.2, 0.2, 1.0, 0),
            boxed(0.8, 0.8, 0.2, 0.2, 1.0, 0),
        ]];
        let pred = vec![vec![boxed(0.2, 0.2, 0.2, 0.2, 0.9, 0)]];
        let map = mean_average_precision(&pred, &gt, 1, 0.5);
        assert!((map - 0.5).abs() < 1e-6);
    }

    #[test]
    fn false_positive_lowers_map() {
        let gt = vec![vec![boxed(0.2, 0.2, 0.2, 0.2, 1.0, 0)]];
        let pred = vec![vec![
            boxed(0.9, 0.9, 0.1, 0.1, 0.99, 0), // confident false positive
            boxed(0.2, 0.2, 0.2, 0.2, 0.5, 0),
        ]];
        let map = mean_average_precision(&pred, &gt, 1, 0.5);
        assert!(map < 1.0 && map > 0.0);
    }

    #[test]
    fn coco_map_le_map50() {
        let gt = vec![vec![boxed(0.5, 0.5, 0.2, 0.2, 1.0, 0)]];
        // Slightly offset prediction: passes IoU 0.5 but fails 0.9.
        let pred = vec![vec![boxed(0.52, 0.5, 0.2, 0.2, 0.9, 0)]];
        let m50 = mean_average_precision(&pred, &gt, 1, 0.5);
        let mcoco = map_coco(&pred, &gt, 1);
        assert!(mcoco < m50);
        assert!(m50 > 0.99);
    }
}
