//! Optimizers and learning-rate schedules.
//!
//! The paper's quantization training uses SGD with ℓ2 regularisation and step
//! or cosine learning-rate decay (§IV-C1); Adam is provided for the RNN tasks
//! where it is the conventional choice.

use crate::module::Param;

/// Learning-rate schedule evaluated per epoch.
#[derive(Debug, Clone, PartialEq)]
pub enum LrSchedule {
    /// Constant learning rate.
    Constant,
    /// Multiply by `gamma` every `every` epochs.
    Step {
        /// Epoch period between decays.
        every: usize,
        /// Multiplicative decay factor.
        gamma: f32,
    },
    /// Cosine annealing from the base rate to `min_lr` over `total_epochs`.
    Cosine {
        /// Horizon of the anneal.
        total_epochs: usize,
        /// Floor learning rate.
        min_lr: f32,
    },
}

impl LrSchedule {
    /// Learning rate at `epoch` given the base rate.
    pub fn lr_at(&self, base_lr: f32, epoch: usize) -> f32 {
        match *self {
            LrSchedule::Constant => base_lr,
            LrSchedule::Step { every, gamma } => {
                base_lr * gamma.powi((epoch / every.max(1)) as i32)
            }
            LrSchedule::Cosine {
                total_epochs,
                min_lr,
            } => {
                let t = (epoch as f32 / total_epochs.max(1) as f32).min(1.0);
                min_lr + 0.5 * (base_lr - min_lr) * (1.0 + (std::f32::consts::PI * t).cos())
            }
        }
    }
}

/// SGD with momentum and decoupled ℓ2 weight decay.
#[derive(Debug)]
pub struct Sgd {
    base_lr: f32,
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    schedule: LrSchedule,
    velocity: Vec<Vec<f32>>,
}

impl Sgd {
    /// Creates plain SGD (no momentum, no decay).
    pub fn new(lr: f32) -> Self {
        Self::with_config(lr, 0.0, 0.0, LrSchedule::Constant)
    }

    /// Creates SGD with momentum, ℓ2 weight decay and a schedule.
    ///
    /// # Panics
    ///
    /// Panics when `lr <= 0` or `momentum` is outside `[0, 1)`.
    pub fn with_config(lr: f32, momentum: f32, weight_decay: f32, schedule: LrSchedule) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0,1)");
        Sgd {
            base_lr: lr,
            lr,
            momentum,
            weight_decay,
            schedule,
            velocity: Vec::new(),
        }
    }

    /// Updates the learning rate for a new epoch.
    pub fn start_epoch(&mut self, epoch: usize) {
        self.lr = self.schedule.lr_at(self.base_lr, epoch);
    }

    /// The learning rate currently in effect.
    pub fn current_lr(&self) -> f32 {
        self.lr
    }

    /// Applies one update step to `params` from their accumulated gradients.
    /// Gradients are left untouched; call `zero_grad` afterwards.
    pub fn step(&mut self, params: &mut [&mut Param]) {
        if self.velocity.len() != params.len() {
            self.velocity = params.iter().map(|p| vec![0.0; p.len()]).collect();
        }
        for (p, vel) in params.iter_mut().zip(self.velocity.iter_mut()) {
            debug_assert_eq!(
                p.len(),
                vel.len(),
                "parameter shape changed under optimizer"
            );
            let g = p.grad.as_slice().to_vec();
            let w = p.value.as_mut_slice();
            for i in 0..w.len() {
                let grad = g[i] + self.weight_decay * w[i];
                vel[i] = self.momentum * vel[i] + grad;
                w[i] -= self.lr * vel[i];
            }
        }
    }
}

/// Adam optimizer (β1=0.9, β2=0.999 by default).
#[derive(Debug)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    t: u64,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    /// Creates Adam with standard betas.
    ///
    /// # Panics
    ///
    /// Panics when `lr <= 0`.
    pub fn new(lr: f32) -> Self {
        Self::with_weight_decay(lr, 0.0)
    }

    /// Adam with ℓ2 weight decay.
    ///
    /// # Panics
    ///
    /// Panics when `lr <= 0`.
    pub fn with_weight_decay(lr: f32, weight_decay: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Applies one Adam step.
    pub fn step(&mut self, params: &mut [&mut Param]) {
        if self.m.len() != params.len() {
            self.m = params.iter().map(|p| vec![0.0; p.len()]).collect();
            self.v = params.iter().map(|p| vec![0.0; p.len()]).collect();
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for ((p, m), v) in params
            .iter_mut()
            .zip(self.m.iter_mut())
            .zip(self.v.iter_mut())
        {
            let g = p.grad.as_slice().to_vec();
            let w = p.value.as_mut_slice();
            for i in 0..w.len() {
                let grad = g[i] + self.weight_decay * w[i];
                m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * grad;
                v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * grad * grad;
                let mh = m[i] / bc1;
                let vh = v[i] / bc2;
                w[i] -= self.lr * mh / (vh.sqrt() + self.eps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mixmatch_tensor::Tensor;

    fn quadratic_grad(p: &mut Param) {
        // d/dw of 0.5*||w - 3||^2 is (w - 3)
        p.grad = p.value.map(|w| w - 3.0);
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut p = Param::new("w", Tensor::zeros(&[4]));
        let mut opt = Sgd::new(0.2);
        for _ in 0..100 {
            quadratic_grad(&mut p);
            opt.step(&mut [&mut p]);
        }
        assert!(p.value.as_slice().iter().all(|&w| (w - 3.0).abs() < 1e-3));
    }

    #[test]
    fn momentum_accelerates_convergence() {
        let run = |momentum: f32| {
            let mut p = Param::new("w", Tensor::zeros(&[1]));
            let mut opt = Sgd::with_config(0.02, momentum, 0.0, LrSchedule::Constant);
            for _ in 0..40 {
                quadratic_grad(&mut p);
                opt.step(&mut [&mut p]);
            }
            (p.value.as_slice()[0] - 3.0).abs()
        };
        assert!(run(0.9) < run(0.0));
    }

    #[test]
    fn weight_decay_shrinks_stationary_point() {
        let mut p = Param::new("w", Tensor::zeros(&[1]));
        let mut opt = Sgd::with_config(0.1, 0.0, 0.5, LrSchedule::Constant);
        for _ in 0..300 {
            quadratic_grad(&mut p);
            opt.step(&mut [&mut p]);
        }
        // Stationary point of (w-3) + 0.5 w = 0  →  w = 2.
        assert!((p.value.as_slice()[0] - 2.0).abs() < 1e-2);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut p = Param::new("w", Tensor::zeros(&[4]));
        let mut opt = Adam::new(0.1);
        for _ in 0..300 {
            quadratic_grad(&mut p);
            opt.step(&mut [&mut p]);
        }
        assert!(p.value.as_slice().iter().all(|&w| (w - 3.0).abs() < 1e-2));
    }

    #[test]
    fn step_schedule_decays() {
        let s = LrSchedule::Step {
            every: 10,
            gamma: 0.1,
        };
        assert!((s.lr_at(1.0, 0) - 1.0).abs() < 1e-7);
        assert!((s.lr_at(1.0, 9) - 1.0).abs() < 1e-7);
        assert!((s.lr_at(1.0, 10) - 0.1).abs() < 1e-7);
        assert!((s.lr_at(1.0, 25) - 0.01).abs() < 1e-6);
    }

    #[test]
    fn cosine_schedule_endpoints() {
        let s = LrSchedule::Cosine {
            total_epochs: 100,
            min_lr: 0.001,
        };
        assert!((s.lr_at(1.0, 0) - 1.0).abs() < 1e-6);
        assert!((s.lr_at(1.0, 100) - 0.001).abs() < 1e-6);
        let mid = s.lr_at(1.0, 50);
        assert!(mid < 1.0 && mid > 0.001);
    }

    #[test]
    fn epoch_updates_current_lr() {
        let mut opt = Sgd::with_config(
            1.0,
            0.0,
            0.0,
            LrSchedule::Step {
                every: 1,
                gamma: 0.5,
            },
        );
        opt.start_epoch(2);
        assert!((opt.current_lr() - 0.25).abs() < 1e-7);
    }
}
