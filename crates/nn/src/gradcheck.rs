//! Finite-difference gradient checking.
//!
//! Every layer's unit tests call [`check_layer_gradients`], which compares the
//! analytic input- and parameter-gradients of a [`Layer`] against central
//! finite differences of the scalar loss `L = Σ y·R` for a fixed random `R`.
//! This is the single most load-bearing test utility in the workspace: the
//! correctness of quantization-aware training rests on these backward passes.

use crate::module::Layer;
use mixmatch_tensor::{Tensor, TensorRng};

/// Relative error between analytic and numeric derivative, guarded for tiny
/// denominators.
fn rel_err(analytic: f32, numeric: f32) -> f32 {
    let denom = analytic.abs().max(numeric.abs()).max(1e-3);
    (analytic - numeric).abs() / denom
}

/// Checks input and parameter gradients of `layer` on a random input of shape
/// `input_dims`.
///
/// The scalar objective is `L(x, θ) = Σ_j y_j · r_j` with `y = layer(x)` and a
/// fixed random projection `r`, whose exact gradient w.r.t. `y` is `r`.
///
/// # Panics
///
/// Panics (assertion failure) when any coordinate's relative error exceeds
/// `tol`. Uses step `h = 1e-2` scaled to the coordinate, which is a good
/// compromise for `f32` arithmetic.
pub fn check_layer_gradients(
    layer: &mut impl Layer,
    input_dims: &[usize],
    tol: f32,
    rng: &mut TensorRng,
) {
    let x = Tensor::randn(input_dims, rng);
    let y0 = layer.forward(&x, true);
    let r = Tensor::randn(y0.dims(), rng);
    layer.zero_grad();
    // Analytic pass.
    let _ = layer.forward(&x, true);
    let grad_x = layer.backward(&r);

    // Numeric input gradient.
    let h = 1e-2f32;
    for i in 0..x.len() {
        let mut xp = x.clone();
        xp.as_mut_slice()[i] += h;
        let mut xm = x.clone();
        xm.as_mut_slice()[i] -= h;
        let lp = layer.forward(&xp, false).dot(&r);
        let lm = layer.forward(&xm, false).dot(&r);
        let numeric = (lp - lm) / (2.0 * h);
        let analytic = grad_x.as_slice()[i];
        assert!(
            rel_err(analytic, numeric) < tol,
            "input grad mismatch at {i}: analytic={analytic} numeric={numeric}"
        );
    }

    // Numeric parameter gradients. Perturb one coordinate at a time through
    // params_mut, evaluating in eval-free training mode to keep layers with
    // batch statistics deterministic (they must honour `train=false`).
    let n_params = layer.params().len();
    for pi in 0..n_params {
        let plen = layer.params()[pi].len();
        // Snapshot the analytic grad now — later forwards must not disturb it.
        let analytic_grad = layer.params()[pi].grad.clone();
        for ci in 0..sample_indices(plen) {
            let idx = (ci * 7919) % plen; // spread sampled coordinates
            let orig = layer.params_mut()[pi].value.as_slice()[idx];
            layer.params_mut()[pi].value.as_mut_slice()[idx] = orig + h;
            let lp = layer.forward(&x, false).dot(&r);
            layer.params_mut()[pi].value.as_mut_slice()[idx] = orig - h;
            let lm = layer.forward(&x, false).dot(&r);
            layer.params_mut()[pi].value.as_mut_slice()[idx] = orig;
            let numeric = (lp - lm) / (2.0 * h);
            let analytic = analytic_grad.as_slice()[idx];
            assert!(
                rel_err(analytic, numeric) < tol,
                "param {pi} grad mismatch at {idx}: analytic={analytic} numeric={numeric}"
            );
        }
    }
}

/// Caps how many coordinates of a parameter are probed (finite differences
/// are O(2·forward) per coordinate).
fn sample_indices(len: usize) -> usize {
    len.min(24)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::Param;

    /// y = w * x elementwise with a deliberate backward bug toggle.
    struct Scale {
        w: Param,
        buggy: bool,
        cache: Option<Tensor>,
    }

    impl Layer for Scale {
        fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
            if train {
                self.cache = Some(input.clone());
            }
            input.zip(&self.w.value, |x, w| x * w)
        }

        fn backward(&mut self, grad_output: &Tensor) -> Tensor {
            let x = self.cache.take().expect("no cache");
            let factor = if self.buggy { 2.0 } else { 1.0 };
            self.w
                .grad
                .axpy(factor, &grad_output.zip(&x, |g, xi| g * xi));
            grad_output.zip(&self.w.value, |g, w| g * w)
        }

        fn params(&self) -> Vec<&Param> {
            vec![&self.w]
        }

        fn params_mut(&mut self) -> Vec<&mut Param> {
            vec![&mut self.w]
        }
    }

    #[test]
    fn accepts_correct_gradients() {
        let mut rng = TensorRng::seed_from(0);
        let mut layer = Scale {
            w: Param::new("w", Tensor::randn(&[5], &mut rng)),
            buggy: false,
            cache: None,
        };
        check_layer_gradients(&mut layer, &[5], 1e-2, &mut rng);
    }

    #[test]
    #[should_panic(expected = "grad mismatch")]
    fn rejects_buggy_gradients() {
        let mut rng = TensorRng::seed_from(0);
        let mut layer = Scale {
            w: Param::new("w", Tensor::randn(&[5], &mut rng)),
            buggy: true,
            cache: None,
        };
        check_layer_gradients(&mut layer, &[5], 1e-2, &mut rng);
    }
}
