//! Fully-connected layer.

use crate::init;
use crate::module::{Layer, Param};
use mixmatch_tensor::{gemm, Tensor, TensorRng};

/// Affine transform `y = x·Wᵀ + b` on batched input `[B, in]`.
///
/// The weight is stored `[out, in]`, i.e. **one row per output neuron** — the
/// same row-per-filter convention the paper's row-wise scheme assignment
/// (Algorithm 2) operates on.
pub struct Linear {
    weight: Param,
    bias: Option<Param>,
    in_features: usize,
    out_features: usize,
    cached_input: Option<Tensor>,
}

impl Linear {
    /// Creates a linear layer with LeCun-uniform init.
    pub fn new(in_features: usize, out_features: usize, bias: bool, rng: &mut TensorRng) -> Self {
        Self::with_name("linear", in_features, out_features, bias, rng)
    }

    /// Creates a linear layer whose parameters are named `{name}.weight` /
    /// `{name}.bias`.
    pub fn with_name(
        name: &str,
        in_features: usize,
        out_features: usize,
        bias: bool,
        rng: &mut TensorRng,
    ) -> Self {
        let weight = Param::new(
            format!("{name}.weight"),
            init::lecun_uniform(&[out_features, in_features], in_features, rng),
        );
        let bias = bias.then(|| Param::new(format!("{name}.bias"), Tensor::zeros(&[out_features])));
        Linear {
            weight,
            bias,
            in_features,
            out_features,
            cached_input: None,
        }
    }

    /// Input width.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output width.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// The `[out, in]` weight parameter.
    pub fn weight(&self) -> &Param {
        &self.weight
    }

    /// Mutable access to the weight parameter (used by quantization).
    pub fn weight_mut(&mut self) -> &mut Param {
        &mut self.weight
    }
}

impl Layer for Linear {
    /// Lowers as an integer matrix–vector step. The integer datapath has
    /// no bias adder (the accelerator folds biases into requantization,
    /// which is future work), matching the per-layer deployment path.
    fn lowering(&self) -> crate::lower::LayerLowering {
        crate::lower::LayerLowering::Step(crate::lower::LoweredOp::Gemm {
            name: self.weight.name().to_string(),
        })
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        assert_eq!(input.shape().rank(), 2, "Linear expects [batch, in] input");
        assert_eq!(
            input.dims()[1],
            self.in_features,
            "Linear input width mismatch"
        );
        let batch = input.dims()[0];
        // y[b,o] = sum_i x[b,i] * w[o,i]  ==  X (B,I) * W^T (I,O)
        let wt = self.weight.value.transpose();
        let mut out = input.matmul(&wt);
        if let Some(b) = &self.bias {
            for r in 0..batch {
                let row = out.row_mut(r);
                for (o, v) in row.iter_mut().enumerate() {
                    *v += b.value.as_slice()[o];
                }
            }
        }
        if train {
            self.cached_input = Some(input.clone());
        }
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .take()
            .expect("Linear::backward called without cached forward");
        let batch = input.dims()[0];
        assert_eq!(grad_output.dims(), &[batch, self.out_features]);
        // dW[o,i] += sum_b g[b,o] * x[b,i]  ==  G^T (O,B) * X (B,I)
        gemm::gemm_accumulate(
            grad_output.transpose().as_slice(),
            input.as_slice(),
            self.weight.grad.as_mut_slice(),
            self.out_features,
            batch,
            self.in_features,
        );
        if let Some(b) = &mut self.bias {
            for r in 0..batch {
                let g = grad_output.row(r);
                for (o, gb) in b.grad.as_mut_slice().iter_mut().enumerate() {
                    *gb += g[o];
                }
            }
        }
        // dX = G (B,O) * W (O,I)
        grad_output.matmul(&self.weight.value)
    }

    fn params(&self) -> Vec<&Param> {
        let mut v = vec![&self.weight];
        if let Some(b) = &self.bias {
            v.push(b);
        }
        v
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut v = vec![&mut self.weight];
        if let Some(b) = &mut self.bias {
            v.push(b);
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_layer_gradients;

    #[test]
    fn forward_matches_manual() {
        let mut rng = TensorRng::seed_from(0);
        let mut fc = Linear::new(3, 2, true, &mut rng);
        fc.weight.value = Tensor::from_vec(vec![1.0, 0.0, 0.0, 0.0, 1.0, 0.0], &[2, 3]).unwrap();
        if let Some(b) = &mut fc.bias {
            b.value = Tensor::from_vec(vec![0.5, -0.5], &[2]).unwrap();
        }
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]).unwrap();
        let y = fc.forward(&x, false);
        assert_eq!(y.as_slice(), &[1.5, 1.5]);
    }

    #[test]
    fn gradients_pass_finite_difference_check() {
        let mut rng = TensorRng::seed_from(1);
        let mut fc = Linear::new(4, 3, true, &mut rng);
        check_layer_gradients(&mut fc, &[2, 4], 1e-2, &mut rng);
    }

    #[test]
    fn gradients_without_bias() {
        let mut rng = TensorRng::seed_from(2);
        let mut fc = Linear::new(3, 3, false, &mut rng);
        check_layer_gradients(&mut fc, &[2, 3], 1e-2, &mut rng);
    }

    #[test]
    #[should_panic(expected = "without cached forward")]
    fn backward_without_forward_panics() {
        let mut rng = TensorRng::seed_from(3);
        let mut fc = Linear::new(2, 2, true, &mut rng);
        let _ = fc.backward(&Tensor::zeros(&[1, 2]));
    }

    #[test]
    fn eval_forward_does_not_cache() {
        let mut rng = TensorRng::seed_from(4);
        let mut fc = Linear::new(2, 2, true, &mut rng);
        let x = Tensor::randn(&[1, 2], &mut rng);
        let _ = fc.forward(&x, false);
        assert!(fc.cached_input.is_none());
    }
}
