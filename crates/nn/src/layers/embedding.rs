//! Token embedding lookup.

use crate::module::{Layer, Param};
use mixmatch_tensor::{Tensor, TensorRng};

/// Embedding table `[vocab, dim]` looked up by token id.
///
/// The [`Layer`] interface is tensor-to-tensor, so token ids are passed as a
/// float tensor of ids (`[B]` or `[B, T]` flattened by the caller) and each id
/// is rounded to the nearest integer. [`Embedding::lookup`] offers the typed
/// interface used by the RNN models.
pub struct Embedding {
    table: Param,
    vocab: usize,
    dim: usize,
    cached_ids: Option<Vec<usize>>,
}

impl Embedding {
    /// Creates an embedding table with `N(0, 0.1)` init.
    pub fn new(vocab: usize, dim: usize, rng: &mut TensorRng) -> Self {
        let mut t = Tensor::randn(&[vocab, dim], rng);
        t.scale_inplace(0.1);
        Embedding {
            table: Param::new("embedding.weight", t),
            vocab,
            dim,
            cached_ids: None,
        }
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Looks up a batch of token ids, returning `[ids.len(), dim]`.
    ///
    /// # Panics
    ///
    /// Panics when any id is out of vocabulary.
    pub fn lookup(&mut self, ids: &[usize], train: bool) -> Tensor {
        let mut out = Tensor::zeros(&[ids.len(), self.dim]);
        for (r, &id) in ids.iter().enumerate() {
            assert!(id < self.vocab, "token id {id} out of vocabulary");
            out.row_mut(r).copy_from_slice(self.table.value.row(id));
        }
        if train {
            self.cached_ids = Some(ids.to_vec());
        }
        out
    }

    /// Backward for [`lookup`](Self::lookup): scatters gradients into the
    /// table rows.
    ///
    /// # Panics
    ///
    /// Panics when called without a preceding training-mode lookup.
    pub fn lookup_backward(&mut self, grad_output: &Tensor) {
        let ids = self
            .cached_ids
            .take()
            .expect("Embedding::lookup_backward without cached lookup");
        assert_eq!(grad_output.dims(), &[ids.len(), self.dim]);
        for (r, &id) in ids.iter().enumerate() {
            let g = grad_output.row(r);
            let dst = self.table.grad.row_mut(id);
            for (d, &s) in dst.iter_mut().zip(g) {
                *d += s;
            }
        }
    }
}

impl Layer for Embedding {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let ids: Vec<usize> = input
            .as_slice()
            .iter()
            .map(|&x| x.round() as usize)
            .collect();
        self.lookup(&ids, train)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        self.lookup_backward(grad_output);
        // Ids have no gradient.
        Tensor::zeros(&[grad_output.dims()[0]])
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.table]
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.table]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_returns_table_rows() {
        let mut rng = TensorRng::seed_from(0);
        let mut emb = Embedding::new(10, 4, &mut rng);
        let y = emb.lookup(&[3, 3, 7], false);
        assert_eq!(y.dims(), &[3, 4]);
        assert_eq!(y.row(0), y.row(1));
        assert_eq!(y.row(0), emb.table.value.row(3));
        assert_eq!(y.row(2), emb.table.value.row(7));
    }

    #[test]
    fn backward_accumulates_per_token() {
        let mut rng = TensorRng::seed_from(1);
        let mut emb = Embedding::new(5, 2, &mut rng);
        let _ = emb.lookup(&[2, 2], true);
        let g = Tensor::ones(&[2, 2]);
        emb.lookup_backward(&g);
        // Token 2 used twice: its grad row is 2.0 everywhere.
        assert_eq!(emb.table.grad.row(2), &[2.0, 2.0]);
        assert_eq!(emb.table.grad.row(0), &[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "out of vocabulary")]
    fn oov_panics() {
        let mut rng = TensorRng::seed_from(2);
        let mut emb = Embedding::new(3, 2, &mut rng);
        let _ = emb.lookup(&[3], false);
    }
}
