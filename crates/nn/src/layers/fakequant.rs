//! Fake (simulated) activation quantization with a straight-through
//! estimator.
//!
//! The paper quantizes all activations with **fixed-point** (§III, Table I)
//! and trains through the quantizer with STE (Algorithm 1). `FakeQuant`
//! implements exactly that: the forward pass clips to `[0, clip]` (unsigned,
//! post-ReLU) or `[-clip, clip]` (signed, e.g. network input) and rounds to
//! `2^bits - 1` uniform levels; the backward pass forwards gradients
//! unchanged inside the clip range and zeroes them outside.
//!
//! The clip threshold is calibrated online during training with an
//! exponential moving average of the batch maximum, or learned like PACT's
//! `α` when [`FakeQuantConfig::learnable_clip`] is set.

use crate::module::{Layer, Param};
use mixmatch_tensor::Tensor;

/// Configuration for a [`FakeQuant`] layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FakeQuantConfig {
    /// Quantization bit-width (4 in all the paper's experiments).
    pub bits: u32,
    /// `true` for symmetric signed range `[-clip, clip]` (network inputs);
    /// `false` for unsigned `[0, clip]` (post-ReLU activations).
    pub signed: bool,
    /// EMA momentum for clip calibration (ignored when the clip is
    /// learnable).
    pub ema_momentum: f32,
    /// Learn the clip threshold with PACT-style gradients instead of EMA
    /// calibration.
    pub learnable_clip: bool,
}

impl FakeQuantConfig {
    /// Unsigned 4-bit activation quantization, the paper's default.
    pub fn act4() -> Self {
        FakeQuantConfig {
            bits: 4,
            signed: false,
            ema_momentum: 0.05,
            learnable_clip: false,
        }
    }

    /// Signed variant for quantizing network inputs.
    pub fn signed_bits(bits: u32) -> Self {
        FakeQuantConfig {
            bits,
            signed: true,
            ema_momentum: 0.05,
            learnable_clip: false,
        }
    }
}

/// Simulated-quantization layer (see module docs).
pub struct FakeQuant {
    config: FakeQuantConfig,
    clip: Param,
    enabled: bool,
    calibrated: bool,
    cached_input: Option<Tensor>,
}

impl FakeQuant {
    /// Creates a fake-quant layer with an initial clip of 1.
    pub fn new(config: FakeQuantConfig) -> Self {
        assert!(config.bits >= 2, "need at least 2 bits");
        FakeQuant {
            config,
            clip: Param::new("act_quant.clip", Tensor::ones(&[1])),
            enabled: true,
            calibrated: false,
            cached_input: None,
        }
    }

    /// Enables or disables quantization (disabled = identity), which lets a
    /// training schedule warm up in float before quantizing.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Current clip threshold.
    pub fn clip_value(&self) -> f32 {
        self.clip.value.as_slice()[0]
    }

    /// Number of representable levels on the positive side.
    fn levels(&self) -> f32 {
        ((1u32 << self.config.bits) - 1) as f32
    }

    fn quantize_value(&self, x: f32, clip: f32) -> f32 {
        let lo = if self.config.signed { -clip } else { 0.0 };
        let y = x.clamp(lo, clip);
        let span = clip - lo;
        if span <= 0.0 {
            return 0.0;
        }
        let n = self.levels();
        ((y - lo) / span * n).round() / n * span + lo
    }
}

impl Layer for FakeQuant {
    /// Lowers to a `Requantize` step when enabled (the deployed
    /// `ActQuantizer` round trip), and is skipped when disabled.
    fn lowering(&self) -> crate::lower::LayerLowering {
        if self.enabled {
            crate::lower::LayerLowering::Step(crate::lower::LoweredOp::Requantize)
        } else {
            crate::lower::LayerLowering::Transparent
        }
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        if !self.enabled {
            if train {
                self.cached_input = None;
            }
            return input.clone();
        }
        if train && !self.config.learnable_clip {
            // EMA calibration towards the observed magnitude ceiling.
            let batch_max = input
                .as_slice()
                .iter()
                .map(|&v| v.abs())
                .fold(0.0f32, f32::max)
                .max(1e-6);
            let c = self.clip.value.as_mut_slice();
            c[0] = if self.calibrated {
                (1.0 - self.config.ema_momentum) * c[0] + self.config.ema_momentum * batch_max
            } else {
                batch_max
            };
            self.calibrated = true;
        }
        let clip = self.clip_value().max(1e-6);
        if train {
            self.cached_input = Some(input.clone());
        }
        input.map(|x| self.quantize_value(x, clip))
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        if !self.enabled {
            return grad_output.clone();
        }
        let x = self
            .cached_input
            .take()
            .expect("FakeQuant::backward called without cached forward");
        let clip = self.clip_value().max(1e-6);
        let lo = if self.config.signed { -clip } else { 0.0 };
        if self.config.learnable_clip {
            // PACT: d/dα of clip(x, 0, α) is 1 for x ≥ α else 0.
            let mut g_alpha = 0.0f32;
            for (gi, xi) in grad_output.as_slice().iter().zip(x.as_slice()) {
                if *xi >= clip {
                    g_alpha += gi;
                }
                if self.config.signed && *xi <= lo {
                    g_alpha -= gi;
                }
            }
            self.clip.grad.as_mut_slice()[0] += g_alpha;
        }
        grad_output.zip(&x, |g, xi| if xi > lo && xi < clip { g } else { 0.0 })
    }

    fn params(&self) -> Vec<&Param> {
        if self.config.learnable_clip {
            vec![&self.clip]
        } else {
            Vec::new()
        }
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        if self.config.learnable_clip {
            vec![&mut self.clip]
        } else {
            Vec::new()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mixmatch_tensor::TensorRng;

    #[test]
    fn output_hits_exactly_the_grid() {
        let mut fq = FakeQuant::new(FakeQuantConfig::act4());
        fq.clip.value.as_mut_slice()[0] = 1.0;
        let x = Tensor::from_vec(vec![0.0, 0.5, 1.0, 2.0, -1.0], &[5]).unwrap();
        let y = fq.forward(&x, false);
        let n = 15.0f32;
        for &v in y.as_slice() {
            let k = v * n;
            assert!((k - k.round()).abs() < 1e-5, "{v} is off-grid");
        }
        assert_eq!(y.as_slice()[3], 1.0); // clipped
        assert_eq!(y.as_slice()[4], 0.0); // unsigned floor
    }

    #[test]
    fn signed_mode_preserves_negatives() {
        let mut fq = FakeQuant::new(FakeQuantConfig::signed_bits(4));
        fq.clip.value.as_mut_slice()[0] = 1.0;
        let x = Tensor::from_vec(vec![-0.8, 0.8], &[2]).unwrap();
        let y = fq.forward(&x, false);
        assert!(y.as_slice()[0] < -0.7);
        assert!(y.as_slice()[1] > 0.7);
    }

    #[test]
    fn ste_gradient_masks_out_of_range() {
        let mut fq = FakeQuant::new(FakeQuantConfig::act4());
        fq.clip.value.as_mut_slice()[0] = 1.0;
        fq.calibrated = true;
        // Prevent recalibration from moving the clip in this test.
        fq.config.ema_momentum = 0.0;
        let x = Tensor::from_vec(vec![-0.5, 0.5, 1.5], &[3]).unwrap();
        let _ = fq.forward(&x, true);
        let g = fq.backward(&Tensor::ones(&[3]));
        assert_eq!(g.as_slice(), &[0.0, 1.0, 0.0]);
    }

    #[test]
    fn calibration_tracks_input_scale() {
        let mut rng = TensorRng::seed_from(0);
        let mut fq = FakeQuant::new(FakeQuantConfig::act4());
        for _ in 0..50 {
            let x = &Tensor::randn(&[64], &mut rng) * 3.0;
            let _ = fq.forward(&x, true);
        }
        let clip = fq.clip_value();
        assert!(clip > 4.0 && clip < 16.0, "clip {clip} off-scale");
    }

    #[test]
    fn disabled_layer_is_identity() {
        let mut fq = FakeQuant::new(FakeQuantConfig::act4());
        fq.set_enabled(false);
        let x = Tensor::from_vec(vec![0.123, 4.567], &[2]).unwrap();
        assert_eq!(fq.forward(&x, true), x);
        let g = fq.backward(&Tensor::ones(&[2]));
        assert_eq!(g.as_slice(), &[1.0, 1.0]);
    }

    #[test]
    fn learnable_clip_receives_gradient() {
        let mut fq = FakeQuant::new(FakeQuantConfig {
            bits: 4,
            signed: false,
            ema_momentum: 0.0,
            learnable_clip: true,
        });
        fq.clip.value.as_mut_slice()[0] = 1.0;
        let x = Tensor::from_vec(vec![0.5, 2.0, 3.0], &[3]).unwrap();
        let _ = fq.forward(&x, true);
        let _ = fq.backward(&Tensor::ones(&[3]));
        // Two samples above clip → dα = 2.
        assert_eq!(fq.clip.grad.as_slice()[0], 2.0);
        assert_eq!(fq.params().len(), 1);
    }

    #[test]
    fn quantization_error_is_bounded_by_half_step() {
        let mut fq = FakeQuant::new(FakeQuantConfig::act4());
        fq.clip.value.as_mut_slice()[0] = 1.0;
        let mut rng = TensorRng::seed_from(1);
        let x = Tensor::rand_uniform(&[100], 0.0, 1.0, &mut rng);
        let y = fq.forward(&x, false);
        let step = 1.0 / 15.0;
        assert!(y.max_abs_diff(&x) <= step / 2.0 + 1e-6);
    }
}
