//! Elementwise activation layers.

use crate::lower::{ActKind, LayerLowering, LoweredOp};
use crate::module::Layer;
use mixmatch_tensor::Tensor;

macro_rules! activation {
    // Lowerable activations: the integer execution plan runs them as
    // `Activation($kind)` steps.
    ($(#[$doc:meta])* $name:ident, fwd = $fwd:expr, bwd = $bwd:expr, lowered = $kind:expr) => {
        activation!(@define $(#[$doc])* $name, $fwd, $bwd,
            LayerLowering::Step(LoweredOp::Activation($kind)));

        impl $name {
            /// The lowered-step kind this activation executes as.
            pub fn act_kind(&self) -> ActKind {
                $kind
            }
        }
    };
    // Activations the integer datapath has no step for (their containing
    // model stays plan-free).
    ($(#[$doc:meta])* $name:ident, fwd = $fwd:expr, bwd = $bwd:expr) => {
        activation!(@define $(#[$doc])* $name, $fwd, $bwd, LayerLowering::Opaque);
    };
    (@define $(#[$doc:meta])* $name:ident, $fwd:expr, $bwd:expr, $low:expr) => {
        $(#[$doc])*
        #[derive(Debug, Default)]
        pub struct $name {
            cached_input: Option<Tensor>,
        }

        impl $name {
            /// Creates the activation layer.
            pub fn new() -> Self {
                Self { cached_input: None }
            }
        }

        impl Layer for $name {
            fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
                if train {
                    self.cached_input = Some(input.clone());
                }
                let f: fn(f32) -> f32 = $fwd;
                input.map(f)
            }

            fn backward(&mut self, grad_output: &Tensor) -> Tensor {
                let x = self
                    .cached_input
                    .take()
                    .expect(concat!(stringify!($name), "::backward without cached forward"));
                let d: fn(f32) -> f32 = $bwd;
                grad_output.zip(&x, |g, xi| g * d(xi))
            }

            fn lowering(&self) -> LayerLowering {
                $low
            }
        }
    };
}

activation!(
    /// Rectified linear unit `max(0, x)`.
    Relu,
    fwd = |x| x.max(0.0),
    bwd = |x| if x > 0.0 { 1.0 } else { 0.0 },
    lowered = ActKind::Relu
);

activation!(
    /// ReLU clipped at 6, as used by MobileNet-v2 (`min(max(0,x), 6)`); its
    /// bounded range is what makes fixed-point activation quantization
    /// well-behaved on lightweight models.
    Relu6,
    fwd = |x| x.clamp(0.0, 6.0),
    bwd = |x| if x > 0.0 && x < 6.0 { 1.0 } else { 0.0 },
    lowered = ActKind::Relu6
);

activation!(
    /// Leaky ReLU with slope 0.1 on the negative side (YOLO backbones).
    LeakyRelu,
    fwd = |x| if x > 0.0 { x } else { 0.1 * x },
    bwd = |x| if x > 0.0 { 1.0 } else { 0.1 },
    lowered = ActKind::LeakyRelu
);

activation!(
    /// Logistic sigmoid.
    Sigmoid,
    fwd = |x| 1.0 / (1.0 + (-x).exp()),
    bwd = |x| {
        let s = 1.0 / (1.0 + (-x).exp());
        s * (1.0 - s)
    }
);

activation!(
    /// Hyperbolic tangent.
    Tanh,
    fwd = |x| x.tanh(),
    bwd = |x| 1.0 - x.tanh() * x.tanh()
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_layer_gradients;
    use mixmatch_tensor::TensorRng;

    #[test]
    fn relu_clamps_negative() {
        let mut l = Relu::new();
        let x = Tensor::from_vec(vec![-1.0, 0.0, 2.0], &[3]).unwrap();
        assert_eq!(l.forward(&x, false).as_slice(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn relu6_clamps_both_sides() {
        let mut l = Relu6::new();
        let x = Tensor::from_vec(vec![-1.0, 3.0, 9.0], &[3]).unwrap();
        assert_eq!(l.forward(&x, false).as_slice(), &[0.0, 3.0, 6.0]);
    }

    #[test]
    fn sigmoid_is_bounded_and_centred() {
        let mut l = Sigmoid::new();
        let x = Tensor::from_vec(vec![-100.0, 0.0, 100.0], &[3]).unwrap();
        let y = l.forward(&x, false);
        assert!(y.as_slice()[0] < 1e-6);
        assert!((y.as_slice()[1] - 0.5).abs() < 1e-6);
        assert!(y.as_slice()[2] > 1.0 - 1e-6);
    }

    #[test]
    fn gradcheck_all_activations() {
        let mut rng = TensorRng::seed_from(10);
        // Offset inputs away from the ReLU kink where the derivative jumps.
        check_layer_gradients(&mut Sigmoid::new(), &[2, 5], 2e-2, &mut rng);
        check_layer_gradients(&mut Tanh::new(), &[2, 5], 2e-2, &mut rng);
        check_layer_gradients(&mut LeakyRelu::new(), &[3, 4], 5e-2, &mut rng);
    }

    #[test]
    fn relu_gradient_masks() {
        let mut l = Relu::new();
        let x = Tensor::from_vec(vec![-1.0, 2.0], &[2]).unwrap();
        let _ = l.forward(&x, true);
        let g = l.backward(&Tensor::ones(&[2]));
        assert_eq!(g.as_slice(), &[0.0, 1.0]);
    }
}
