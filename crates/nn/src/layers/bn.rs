//! Batch normalization for `[B, C, H, W]` feature maps.

use crate::module::{Layer, Param};
use mixmatch_tensor::Tensor;

/// Per-channel batch normalization with affine transform and running
/// statistics.
///
/// In training mode batch statistics are used and running estimates updated
/// with momentum; in eval mode the running estimates are used. The paper's
/// accelerator folds BN into the GEMM epilogue ("processing operations after
/// the convolution ... incur negligible latency"), which the FPGA cycle model
/// mirrors by assigning BN zero marginal cycles.
pub struct BatchNorm2d {
    gamma: Param,
    beta: Param,
    running_mean: Tensor,
    running_var: Tensor,
    momentum: f32,
    eps: f32,
    channels: usize,
    cache: Option<BnCache>,
}

struct BnCache {
    x_hat: Tensor,
    inv_std: Vec<f32>,
    dims: Vec<usize>,
}

impl BatchNorm2d {
    /// Creates a batch-norm layer with unit gain, zero shift, momentum 0.1.
    pub fn new(channels: usize) -> Self {
        Self::with_name("bn", channels)
    }

    /// Creates a batch-norm layer with named parameters.
    pub fn with_name(name: &str, channels: usize) -> Self {
        BatchNorm2d {
            gamma: Param::new(format!("{name}.gamma"), Tensor::ones(&[channels])),
            beta: Param::new(format!("{name}.beta"), Tensor::zeros(&[channels])),
            running_mean: Tensor::zeros(&[channels]),
            running_var: Tensor::ones(&[channels]),
            momentum: 0.1,
            eps: 1e-5,
            channels,
            cache: None,
        }
    }

    /// Running mean estimate (for inspection / folding).
    pub fn running_mean(&self) -> &Tensor {
        &self.running_mean
    }

    /// Running variance estimate (for inspection / folding).
    pub fn running_var(&self) -> &Tensor {
        &self.running_var
    }

    /// `(scale, shift)` per channel for folding BN into a preceding conv at
    /// inference time: `y = scale·x + shift`.
    pub fn fold_factors(&self) -> (Vec<f32>, Vec<f32>) {
        let mut scale = Vec::with_capacity(self.channels);
        let mut shift = Vec::with_capacity(self.channels);
        for c in 0..self.channels {
            let g = self.gamma.value.as_slice()[c];
            let b = self.beta.value.as_slice()[c];
            let m = self.running_mean.as_slice()[c];
            let v = self.running_var.as_slice()[c];
            let s = g / (v + self.eps).sqrt();
            scale.push(s);
            shift.push(b - s * m);
        }
        (scale, shift)
    }
}

impl Layer for BatchNorm2d {
    /// Skipped on the lowered integer path: the deployed artifact exposes
    /// only GEMM weights, and folding BN scale/shift into conv weights
    /// (via [`BatchNorm2d::fold_factors`]) is future work — this matches
    /// the existing per-layer deployment path, which likewise runs without
    /// normalization.
    fn lowering(&self) -> crate::lower::LayerLowering {
        crate::lower::LayerLowering::Transparent
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        assert_eq!(input.shape().rank(), 4, "BatchNorm2d expects [B,C,H,W]");
        let (b, c, h, w) = (
            input.dims()[0],
            input.dims()[1],
            input.dims()[2],
            input.dims()[3],
        );
        assert_eq!(c, self.channels, "BatchNorm2d channel mismatch");
        let plane = h * w;
        let count = (b * plane) as f32;
        let src = input.as_slice();
        let mut out = Tensor::zeros(input.dims());
        let mut x_hat = Tensor::zeros(input.dims());
        let mut inv_stds = vec![0.0f32; c];
        for ch in 0..c {
            let (mean, var) = if train {
                let mut sum = 0.0f32;
                let mut sq = 0.0f32;
                for bi in 0..b {
                    let base = (bi * c + ch) * plane;
                    for &v in &src[base..base + plane] {
                        sum += v;
                        sq += v * v;
                    }
                }
                let mean = sum / count;
                let var = (sq / count - mean * mean).max(0.0);
                // Update running stats.
                let rm = &mut self.running_mean.as_mut_slice()[ch];
                *rm = (1.0 - self.momentum) * *rm + self.momentum * mean;
                let rv = &mut self.running_var.as_mut_slice()[ch];
                *rv = (1.0 - self.momentum) * *rv + self.momentum * var;
                (mean, var)
            } else {
                (
                    self.running_mean.as_slice()[ch],
                    self.running_var.as_slice()[ch],
                )
            };
            let inv_std = 1.0 / (var + self.eps).sqrt();
            inv_stds[ch] = inv_std;
            let g = self.gamma.value.as_slice()[ch];
            let beta = self.beta.value.as_slice()[ch];
            for bi in 0..b {
                let base = (bi * c + ch) * plane;
                for i in base..base + plane {
                    let xh = (src[i] - mean) * inv_std;
                    x_hat.as_mut_slice()[i] = xh;
                    out.as_mut_slice()[i] = g * xh + beta;
                }
            }
        }
        if train {
            self.cache = Some(BnCache {
                x_hat,
                inv_std: inv_stds,
                dims: input.dims().to_vec(),
            });
        }
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let cache = self
            .cache
            .take()
            .expect("BatchNorm2d::backward called without cached forward");
        assert_eq!(grad_output.dims(), &cache.dims[..]);
        let (b, c, h, w) = (cache.dims[0], cache.dims[1], cache.dims[2], cache.dims[3]);
        let plane = h * w;
        let count = (b * plane) as f32;
        let go = grad_output.as_slice();
        let xh = cache.x_hat.as_slice();
        let mut grad_in = Tensor::zeros(&cache.dims);
        for ch in 0..c {
            // Accumulate dgamma, dbeta and the two reduction terms the input
            // gradient needs.
            let mut dg = 0.0f32;
            let mut db = 0.0f32;
            for bi in 0..b {
                let base = (bi * c + ch) * plane;
                for i in base..base + plane {
                    dg += go[i] * xh[i];
                    db += go[i];
                }
            }
            self.gamma.grad.as_mut_slice()[ch] += dg;
            self.beta.grad.as_mut_slice()[ch] += db;
            let g = self.gamma.value.as_slice()[ch];
            let inv_std = cache.inv_std[ch];
            for bi in 0..b {
                let base = (bi * c + ch) * plane;
                for i in base..base + plane {
                    // Standard batch-norm input gradient.
                    grad_in.as_mut_slice()[i] =
                        g * inv_std / count * (count * go[i] - db - xh[i] * dg);
                }
            }
        }
        grad_in
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.gamma, &self.beta]
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.gamma, &mut self.beta]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mixmatch_tensor::{stats, TensorRng};

    #[test]
    fn training_output_is_normalised() {
        let mut rng = TensorRng::seed_from(0);
        let mut bn = BatchNorm2d::new(3);
        let x = Tensor::randn(&[4, 3, 5, 5], &mut rng);
        let y = bn.forward(&x, true);
        // Per channel: mean ≈ 0, var ≈ 1.
        for ch in 0..3 {
            let mut vals = Vec::new();
            for b in 0..4 {
                let base = (b * 3 + ch) * 25;
                vals.extend_from_slice(&y.as_slice()[base..base + 25]);
            }
            assert!(stats::mean(&vals).abs() < 1e-4);
            assert!((stats::variance(&vals) - 1.0).abs() < 1e-2);
        }
    }

    #[test]
    fn eval_uses_running_stats() {
        let mut rng = TensorRng::seed_from(1);
        let mut bn = BatchNorm2d::new(2);
        // Drive running stats towards the batch statistics.
        let x = Tensor::randn(&[8, 2, 4, 4], &mut rng);
        for _ in 0..200 {
            let _ = bn.forward(&x, true);
        }
        let y_eval = bn.forward(&x, false);
        let y_train = bn.forward(&x, true);
        assert!(y_eval.max_abs_diff(&y_train) < 0.05);
    }

    #[test]
    fn backward_gradients_match_finite_difference() {
        // Manual FD check: gradcheck utility uses eval-mode forward for the
        // numeric side, but BN's train/eval paths differ, so probe in train
        // mode with frozen running-stat updates (momentum 0).
        let mut rng = TensorRng::seed_from(2);
        let mut bn = BatchNorm2d::new(2);
        bn.momentum = 0.0;
        let x = Tensor::randn(&[2, 2, 3, 3], &mut rng);
        let r = Tensor::randn(&[2, 2, 3, 3], &mut rng);
        let _ = bn.forward(&x, true);
        let gx = bn.backward(&r);
        let h = 1e-2f32;
        for i in (0..x.len()).step_by(5) {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += h;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= h;
            let lp = bn.forward(&xp, true).dot(&r);
            let lm = bn.forward(&xm, true).dot(&r);
            let numeric = (lp - lm) / (2.0 * h);
            let analytic = gx.as_slice()[i];
            let denom = analytic.abs().max(numeric.abs()).max(1e-2);
            assert!(
                (analytic - numeric).abs() / denom < 5e-2,
                "BN input grad mismatch at {i}: {analytic} vs {numeric}"
            );
        }
    }

    #[test]
    fn fold_factors_reproduce_eval_forward() {
        let mut rng = TensorRng::seed_from(3);
        let mut bn = BatchNorm2d::new(2);
        let x = Tensor::randn(&[4, 2, 3, 3], &mut rng);
        for _ in 0..50 {
            let _ = bn.forward(&x, true);
        }
        let y = bn.forward(&x, false);
        let (scale, shift) = bn.fold_factors();
        let mut manual = Tensor::zeros(x.dims());
        for b in 0..4 {
            for c in 0..2 {
                let base = (b * 2 + c) * 9;
                for i in 0..9 {
                    manual.as_mut_slice()[base + i] = scale[c] * x.as_slice()[base + i] + shift[c];
                }
            }
        }
        assert!(y.max_abs_diff(&manual) < 1e-4);
    }
}
