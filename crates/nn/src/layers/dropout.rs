//! Inverted dropout.

use crate::module::Layer;
use mixmatch_tensor::{Tensor, TensorRng};

/// Inverted dropout: active only in training mode, identity in eval mode.
///
/// Keeps its own forked RNG so that layer construction fixes the noise
/// stream and training remains reproducible.
pub struct Dropout {
    p_drop: f32,
    rng: TensorRng,
    mask: Option<Tensor>,
}

impl Dropout {
    /// Creates a dropout layer dropping activations with probability `p_drop`.
    ///
    /// # Panics
    ///
    /// Panics when `p_drop` is not in `[0, 1)`.
    pub fn new(p_drop: f32, rng: &mut TensorRng) -> Self {
        assert!((0.0..1.0).contains(&p_drop), "p_drop must be in [0,1)");
        Dropout {
            p_drop,
            rng: rng.fork(),
            mask: None,
        }
    }
}

impl Layer for Dropout {
    /// Identity at inference, so the lowered integer path skips it.
    fn lowering(&self) -> crate::lower::LayerLowering {
        crate::lower::LayerLowering::Transparent
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        if !train || self.p_drop == 0.0 {
            self.mask = None;
            return input.clone();
        }
        let keep = 1.0 - self.p_drop;
        let scale = 1.0 / keep;
        let mut mask = Tensor::zeros(input.dims());
        for m in mask.as_mut_slice() {
            *m = if self.rng.bernoulli(keep) { scale } else { 0.0 };
        }
        let out = input.zip(&mask, |x, m| x * m);
        self.mask = Some(mask);
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        match self.mask.take() {
            Some(mask) => grad_output.zip(&mask, |g, m| g * m),
            None => grad_output.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_mode_is_identity() {
        let mut rng = TensorRng::seed_from(0);
        let mut d = Dropout::new(0.5, &mut rng);
        let x = Tensor::randn(&[4, 4], &mut rng);
        let y = d.forward(&x, false);
        assert_eq!(x, y);
    }

    #[test]
    fn training_zeroes_roughly_p_fraction() {
        let mut rng = TensorRng::seed_from(1);
        let mut d = Dropout::new(0.5, &mut rng);
        let x = Tensor::ones(&[100, 100]);
        let y = d.forward(&x, true);
        let zeros = y.as_slice().iter().filter(|&&v| v == 0.0).count();
        assert!((zeros as f32 / 10_000.0 - 0.5).abs() < 0.05);
    }

    #[test]
    fn surviving_units_are_rescaled() {
        let mut rng = TensorRng::seed_from(2);
        let mut d = Dropout::new(0.5, &mut rng);
        let x = Tensor::ones(&[1000]);
        let y = d.forward(&x, true);
        for &v in y.as_slice() {
            assert!(v == 0.0 || (v - 2.0).abs() < 1e-6);
        }
        // Expected value preserved.
        assert!((y.mean() - 1.0).abs() < 0.1);
    }

    #[test]
    fn backward_applies_same_mask() {
        let mut rng = TensorRng::seed_from(3);
        let mut d = Dropout::new(0.3, &mut rng);
        let x = Tensor::ones(&[256]);
        let y = d.forward(&x, true);
        let g = d.backward(&Tensor::ones(&[256]));
        // Where forward output is zero, gradient must be zero; elsewhere the
        // same 1/keep scale applies.
        for (yv, gv) in y.as_slice().iter().zip(g.as_slice()) {
            assert_eq!(yv, gv);
        }
    }
}
