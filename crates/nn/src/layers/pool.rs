//! Spatial pooling layers.

use crate::module::Layer;
use mixmatch_tensor::Tensor;

/// Max pooling with square window and stride equal to the window.
pub struct MaxPool2d {
    window: usize,
    /// Flat argmax index per output element, for backward routing.
    cache: Option<(Vec<usize>, Vec<usize>)>, // (argmax indices, input dims)
}

impl MaxPool2d {
    /// Creates a max-pool layer with `window × window` non-overlapping
    /// windows.
    ///
    /// # Panics
    ///
    /// Panics when `window == 0`.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "pool window must be positive");
        MaxPool2d {
            window,
            cache: None,
        }
    }

    /// The square window edge (== stride).
    pub fn window(&self) -> usize {
        self.window
    }
}

impl Layer for MaxPool2d {
    fn lowering(&self) -> crate::lower::LayerLowering {
        crate::lower::LayerLowering::Step(crate::lower::LoweredOp::Pool(
            crate::lower::PoolKind::Max {
                window: self.window,
            },
        ))
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        assert_eq!(input.shape().rank(), 4, "MaxPool2d expects [B,C,H,W]");
        let (b, c, h, w) = (
            input.dims()[0],
            input.dims()[1],
            input.dims()[2],
            input.dims()[3],
        );
        let k = self.window;
        assert!(
            h % k == 0 && w % k == 0,
            "MaxPool2d input {h}x{w} not divisible by window {k}"
        );
        let (oh, ow) = (h / k, w / k);
        let mut out = Tensor::zeros(&[b, c, oh, ow]);
        let mut argmax = vec![0usize; b * c * oh * ow];
        let src = input.as_slice();
        for bi in 0..b {
            for ch in 0..c {
                let in_base = (bi * c + ch) * h * w;
                let out_base = (bi * c + ch) * oh * ow;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = 0usize;
                        for dy in 0..k {
                            for dx in 0..k {
                                let idx = in_base + (oy * k + dy) * w + ox * k + dx;
                                if src[idx] > best {
                                    best = src[idx];
                                    best_idx = idx;
                                }
                            }
                        }
                        out.as_mut_slice()[out_base + oy * ow + ox] = best;
                        argmax[out_base + oy * ow + ox] = best_idx;
                    }
                }
            }
        }
        if train {
            self.cache = Some((argmax, input.dims().to_vec()));
        }
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let (argmax, dims) = self
            .cache
            .take()
            .expect("MaxPool2d::backward called without cached forward");
        let mut grad_in = Tensor::zeros(&dims);
        for (o, &src_idx) in argmax.iter().enumerate() {
            grad_in.as_mut_slice()[src_idx] += grad_output.as_slice()[o];
        }
        grad_in
    }
}

/// Average pooling with square window and stride equal to the window.
pub struct AvgPool2d {
    window: usize,
    cached_dims: Option<Vec<usize>>,
}

impl AvgPool2d {
    /// Creates an average-pool layer.
    ///
    /// # Panics
    ///
    /// Panics when `window == 0`.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "pool window must be positive");
        AvgPool2d {
            window,
            cached_dims: None,
        }
    }

    /// The square window edge (== stride).
    pub fn window(&self) -> usize {
        self.window
    }
}

impl Layer for AvgPool2d {
    fn lowering(&self) -> crate::lower::LayerLowering {
        crate::lower::LayerLowering::Step(crate::lower::LoweredOp::Pool(
            crate::lower::PoolKind::Avg {
                window: self.window,
            },
        ))
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        assert_eq!(input.shape().rank(), 4, "AvgPool2d expects [B,C,H,W]");
        let (b, c, h, w) = (
            input.dims()[0],
            input.dims()[1],
            input.dims()[2],
            input.dims()[3],
        );
        let k = self.window;
        assert!(
            h % k == 0 && w % k == 0,
            "AvgPool2d input {h}x{w} not divisible by window {k}"
        );
        let (oh, ow) = (h / k, w / k);
        let inv = 1.0 / (k * k) as f32;
        let mut out = Tensor::zeros(&[b, c, oh, ow]);
        let src = input.as_slice();
        for bi in 0..b {
            for ch in 0..c {
                let in_base = (bi * c + ch) * h * w;
                let out_base = (bi * c + ch) * oh * ow;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut sum = 0.0f32;
                        for dy in 0..k {
                            for dx in 0..k {
                                sum += src[in_base + (oy * k + dy) * w + ox * k + dx];
                            }
                        }
                        out.as_mut_slice()[out_base + oy * ow + ox] = sum * inv;
                    }
                }
            }
        }
        if train {
            self.cached_dims = Some(input.dims().to_vec());
        }
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let dims = self
            .cached_dims
            .take()
            .expect("AvgPool2d::backward called without cached forward");
        let (b, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
        let k = self.window;
        let (oh, ow) = (h / k, w / k);
        let inv = 1.0 / (k * k) as f32;
        let mut grad_in = Tensor::zeros(&dims);
        let go = grad_output.as_slice();
        for bi in 0..b {
            for ch in 0..c {
                let in_base = (bi * c + ch) * h * w;
                let out_base = (bi * c + ch) * oh * ow;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let g = go[out_base + oy * ow + ox] * inv;
                        for dy in 0..k {
                            for dx in 0..k {
                                grad_in.as_mut_slice()
                                    [in_base + (oy * k + dy) * w + ox * k + dx] += g;
                            }
                        }
                    }
                }
            }
        }
        grad_in
    }
}

/// Global average pooling: `[B, C, H, W] → [B, C]`.
#[derive(Debug, Default)]
pub struct GlobalAvgPool {
    cached_dims: Option<Vec<usize>>,
}

impl GlobalAvgPool {
    /// Creates a global average pooling layer.
    pub fn new() -> Self {
        GlobalAvgPool { cached_dims: None }
    }
}

impl Layer for GlobalAvgPool {
    fn lowering(&self) -> crate::lower::LayerLowering {
        crate::lower::LayerLowering::Step(crate::lower::LoweredOp::Pool(
            crate::lower::PoolKind::GlobalAvg,
        ))
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        assert_eq!(input.shape().rank(), 4, "GlobalAvgPool expects [B,C,H,W]");
        let (b, c, h, w) = (
            input.dims()[0],
            input.dims()[1],
            input.dims()[2],
            input.dims()[3],
        );
        let plane = h * w;
        let inv = 1.0 / plane as f32;
        let mut out = Tensor::zeros(&[b, c]);
        for bi in 0..b {
            for ch in 0..c {
                let base = (bi * c + ch) * plane;
                out.as_mut_slice()[bi * c + ch] =
                    input.as_slice()[base..base + plane].iter().sum::<f32>() * inv;
            }
        }
        if train {
            self.cached_dims = Some(input.dims().to_vec());
        }
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let dims = self
            .cached_dims
            .take()
            .expect("GlobalAvgPool::backward called without cached forward");
        let (b, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
        let plane = h * w;
        let inv = 1.0 / plane as f32;
        let mut grad_in = Tensor::zeros(&dims);
        for bi in 0..b {
            for ch in 0..c {
                let g = grad_output.as_slice()[bi * c + ch] * inv;
                let base = (bi * c + ch) * plane;
                for v in &mut grad_in.as_mut_slice()[base..base + plane] {
                    *v = g;
                }
            }
        }
        grad_in
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mixmatch_tensor::TensorRng;

    #[test]
    fn maxpool_picks_window_maxima() {
        let x = Tensor::from_vec(
            vec![
                1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0, 12.0, 13.0, 14.0, 15.0,
                16.0,
            ],
            &[1, 1, 4, 4],
        )
        .unwrap();
        let mut p = MaxPool2d::new(2);
        let y = p.forward(&x, false);
        assert_eq!(y.as_slice(), &[6.0, 8.0, 14.0, 16.0]);
    }

    #[test]
    fn maxpool_backward_routes_to_argmax() {
        let x = Tensor::from_vec(vec![1.0, 9.0, 2.0, 3.0], &[1, 1, 2, 2]).unwrap();
        let mut p = MaxPool2d::new(2);
        let _ = p.forward(&x, true);
        let g = p.backward(&Tensor::ones(&[1, 1, 1, 1]));
        assert_eq!(g.as_slice(), &[0.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn avgpool_averages() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap();
        let mut p = AvgPool2d::new(2);
        let y = p.forward(&x, false);
        assert_eq!(y.as_slice(), &[2.5]);
    }

    #[test]
    fn avgpool_backward_spreads_uniformly() {
        let x = Tensor::randn(&[1, 1, 2, 2], &mut TensorRng::seed_from(0));
        let mut p = AvgPool2d::new(2);
        let _ = p.forward(&x, true);
        let g = p.backward(&Tensor::full(&[1, 1, 1, 1], 4.0));
        assert_eq!(g.as_slice(), &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn global_pool_reduces_to_bc() {
        let mut rng = TensorRng::seed_from(1);
        let x = Tensor::randn(&[2, 3, 4, 4], &mut rng);
        let mut p = GlobalAvgPool::new();
        let y = p.forward(&x, true);
        assert_eq!(y.dims(), &[2, 3]);
        let g = p.backward(&Tensor::ones(&[2, 3]));
        assert_eq!(g.dims(), x.dims());
        assert!((g.as_slice()[0] - 1.0 / 16.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn indivisible_input_panics() {
        let mut p = MaxPool2d::new(2);
        let _ = p.forward(&Tensor::zeros(&[1, 1, 3, 3]), false);
    }

    #[test]
    fn gradcheck_pooling_layers() {
        use crate::gradcheck::check_layer_gradients;
        let mut rng = TensorRng::seed_from(7);
        check_layer_gradients(&mut AvgPool2d::new(2), &[1, 2, 4, 4], 2e-2, &mut rng);
        check_layer_gradients(&mut GlobalAvgPool::new(), &[2, 3, 4, 4], 2e-2, &mut rng);
        // MaxPool is piecewise-linear; gradcheck is valid away from ties,
        // which random continuous inputs avoid almost surely.
        check_layer_gradients(&mut MaxPool2d::new(2), &[1, 2, 4, 4], 5e-2, &mut rng);
    }
}
