//! 2-D convolution via `im2col` + GEMM.

use crate::init;
use crate::module::{Layer, Param};
use mixmatch_tensor::im2col::{col2im, im2col, ConvGeometry};
use mixmatch_tensor::{gemm, Tensor, TensorRng};

/// 2-D convolution on `[B, C, H, W]` input, lowered to GEMM.
///
/// The weight is stored as the GEMM matrix `[Cout, (Cin/g)·k·k]`, i.e. **one
/// row per filter** — exactly the matrix whose rows the paper's MSQ algorithm
/// assigns to SP2 or fixed-point. Grouped convolution covers the depthwise
/// case used by MobileNet-v2 (`groups == channels`).
pub struct Conv2d {
    geom: ConvGeometry,
    weight: Param,
    bias: Option<Param>,
    cached: Option<ConvCache>,
}

struct ConvCache {
    /// Per-(batch, group) patch matrices from the forward pass.
    cols: Vec<Tensor>,
    batch: usize,
    in_h: usize,
    in_w: usize,
}

impl Conv2d {
    /// Creates a dense convolution with Kaiming init.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        bias: bool,
        rng: &mut TensorRng,
    ) -> Self {
        Self::with_geometry(
            "conv",
            ConvGeometry::new(in_channels, out_channels, kernel, stride, padding),
            bias,
            rng,
        )
    }

    /// Creates a depthwise convolution (`groups == channels`).
    pub fn depthwise(
        channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        bias: bool,
        rng: &mut TensorRng,
    ) -> Self {
        Self::with_geometry(
            "dwconv",
            ConvGeometry::depthwise(channels, kernel, stride, padding),
            bias,
            rng,
        )
    }

    /// Creates a convolution from an explicit [`ConvGeometry`], naming the
    /// parameters `{name}.weight` / `{name}.bias`.
    ///
    /// # Panics
    ///
    /// Panics when channels are not divisible by groups.
    pub fn with_geometry(name: &str, geom: ConvGeometry, bias: bool, rng: &mut TensorRng) -> Self {
        assert_eq!(
            geom.in_channels % geom.groups,
            0,
            "in_channels must divide by groups"
        );
        assert_eq!(
            geom.out_channels % geom.groups,
            0,
            "out_channels must divide by groups"
        );
        let k = geom.gemm_k();
        let weight = Param::new(
            format!("{name}.weight"),
            init::kaiming_normal(&[geom.out_channels, k], k, rng),
        );
        let bias =
            bias.then(|| Param::new(format!("{name}.bias"), Tensor::zeros(&[geom.out_channels])));
        Conv2d {
            geom,
            weight,
            bias,
            cached: None,
        }
    }

    /// The convolution geometry.
    pub fn geometry(&self) -> &ConvGeometry {
        &self.geom
    }

    /// The `[Cout, K]` GEMM-form weight parameter.
    pub fn weight(&self) -> &Param {
        &self.weight
    }

    /// Mutable access to the weight parameter (used by quantization).
    pub fn weight_mut(&mut self) -> &mut Param {
        &mut self.weight
    }

    fn out_channels_per_group(&self) -> usize {
        self.geom.out_channels / self.geom.groups
    }
}

impl Layer for Conv2d {
    fn lowering(&self) -> crate::lower::LayerLowering {
        crate::lower::LayerLowering::Step(crate::lower::LoweredOp::Conv {
            name: self.weight.name().to_string(),
        })
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        assert_eq!(input.shape().rank(), 4, "Conv2d expects [B, C, H, W] input");
        let (batch, c, h, w) = (
            input.dims()[0],
            input.dims()[1],
            input.dims()[2],
            input.dims()[3],
        );
        assert_eq!(c, self.geom.in_channels, "Conv2d channel mismatch");
        let out_h = self.geom.output_size(h);
        let out_w = self.geom.output_size(w);
        let patches = out_h * out_w;
        let cpg = self.out_channels_per_group();
        let k = self.geom.gemm_k();
        let mut out = Tensor::zeros(&[batch, self.geom.out_channels, out_h, out_w]);
        let mut cols_cache = Vec::new();
        for b in 0..batch {
            let xb = Tensor::from_vec(
                input.as_slice()[b * c * h * w..(b + 1) * c * h * w].to_vec(),
                &[c, h, w],
            )
            .expect("contiguous slice");
            for g in 0..self.geom.groups {
                let cols = im2col(&xb, &self.geom, g);
                let w_g = &self.weight.value.as_slice()[g * cpg * k..(g + 1) * cpg * k];
                let out_off = (b * self.geom.out_channels + g * cpg) * patches;
                gemm::gemm(
                    w_g,
                    cols.as_slice(),
                    &mut out.as_mut_slice()[out_off..out_off + cpg * patches],
                    cpg,
                    k,
                    patches,
                );
                if train {
                    cols_cache.push(cols);
                }
            }
        }
        if let Some(bias) = &self.bias {
            let bs = bias.value.as_slice();
            let o = out.as_mut_slice();
            for b in 0..batch {
                for ch in 0..self.geom.out_channels {
                    let base = (b * self.geom.out_channels + ch) * patches;
                    for p in 0..patches {
                        o[base + p] += bs[ch];
                    }
                }
            }
        }
        if train {
            self.cached = Some(ConvCache {
                cols: cols_cache,
                batch,
                in_h: h,
                in_w: w,
            });
        }
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let cache = self
            .cached
            .take()
            .expect("Conv2d::backward called without cached forward");
        let (batch, h, w) = (cache.batch, cache.in_h, cache.in_w);
        let out_h = self.geom.output_size(h);
        let out_w = self.geom.output_size(w);
        let patches = out_h * out_w;
        let cpg = self.out_channels_per_group();
        let k = self.geom.gemm_k();
        assert_eq!(
            grad_output.dims(),
            &[batch, self.geom.out_channels, out_h, out_w],
            "Conv2d grad_output shape mismatch"
        );
        let mut grad_in = Tensor::zeros(&[batch, self.geom.in_channels, h, w]);
        for b in 0..batch {
            for g in 0..self.geom.groups {
                let cols = &cache.cols[b * self.geom.groups + g];
                let go_off = (b * self.geom.out_channels + g * cpg) * patches;
                let go = &grad_output.as_slice()[go_off..go_off + cpg * patches];
                // dW_g += G (cpg, P) × colsᵀ (P, K)
                let cols_t = cols.transpose();
                gemm::gemm_accumulate(
                    go,
                    cols_t.as_slice(),
                    &mut self.weight.grad.as_mut_slice()[g * cpg * k..(g + 1) * cpg * k],
                    cpg,
                    patches,
                    k,
                );
                // dcols = W_gᵀ (K, cpg) × G (cpg, P)
                let w_g = Tensor::from_vec(
                    self.weight.value.as_slice()[g * cpg * k..(g + 1) * cpg * k].to_vec(),
                    &[cpg, k],
                )
                .expect("contiguous weight group");
                let mut dcols = Tensor::zeros(&[k, patches]);
                gemm::gemm(
                    w_g.transpose().as_slice(),
                    go,
                    dcols.as_mut_slice(),
                    k,
                    cpg,
                    patches,
                );
                let dxg = col2im(&dcols, &self.geom, g, h, w);
                let gi = &mut grad_in.as_mut_slice()
                    [b * self.geom.in_channels * h * w..(b + 1) * self.geom.in_channels * h * w];
                for (dst, &src) in gi.iter_mut().zip(dxg.as_slice()) {
                    *dst += src;
                }
            }
        }
        if let Some(bias) = &mut self.bias {
            let gb = bias.grad.as_mut_slice();
            let go = grad_output.as_slice();
            for b in 0..batch {
                for ch in 0..self.geom.out_channels {
                    let base = (b * self.geom.out_channels + ch) * patches;
                    gb[ch] += go[base..base + patches].iter().sum::<f32>();
                }
            }
        }
        grad_in
    }

    fn params(&self) -> Vec<&Param> {
        let mut v = vec![&self.weight];
        if let Some(b) = &self.bias {
            v.push(b);
        }
        v
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut v = vec![&mut self.weight];
        if let Some(b) = &mut self.bias {
            v.push(b);
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_layer_gradients;

    #[test]
    fn identity_1x1_conv_passes_through() {
        let mut rng = TensorRng::seed_from(0);
        let mut conv = Conv2d::new(2, 2, 1, 1, 0, false, &mut rng);
        conv.weight.value = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]).unwrap();
        let x = Tensor::randn(&[1, 2, 3, 3], &mut rng);
        let y = conv.forward(&x, false);
        assert!(y.max_abs_diff(&x) < 1e-6);
    }

    #[test]
    fn known_3x3_convolution() {
        let mut rng = TensorRng::seed_from(1);
        let mut conv = Conv2d::new(1, 1, 3, 1, 0, false, &mut rng);
        conv.weight.value = Tensor::ones(&[1, 9]);
        let x = Tensor::ones(&[1, 1, 3, 3]);
        let y = conv.forward(&x, false);
        assert_eq!(y.dims(), &[1, 1, 1, 1]);
        assert_eq!(y.as_slice()[0], 9.0);
    }

    #[test]
    fn stride_and_padding_shapes() {
        let mut rng = TensorRng::seed_from(2);
        let mut conv = Conv2d::new(3, 8, 3, 2, 1, true, &mut rng);
        let x = Tensor::randn(&[2, 3, 8, 8], &mut rng);
        let y = conv.forward(&x, false);
        assert_eq!(y.dims(), &[2, 8, 4, 4]);
    }

    #[test]
    fn depthwise_channels_are_independent() {
        let mut rng = TensorRng::seed_from(3);
        let mut conv = Conv2d::depthwise(2, 3, 1, 1, false, &mut rng);
        // Zero the second channel's filter: its output must be zero while the
        // first channel's output is untouched.
        for v in &mut conv.weight.value.as_mut_slice()[9..18] {
            *v = 0.0;
        }
        let x = Tensor::randn(&[1, 2, 4, 4], &mut rng);
        let y = conv.forward(&x, false);
        let second = &y.as_slice()[16..32];
        assert!(second.iter().all(|&v| v == 0.0));
        assert!(y.as_slice()[..16].iter().any(|&v| v != 0.0));
    }

    #[test]
    fn gradcheck_dense_conv() {
        let mut rng = TensorRng::seed_from(4);
        let mut conv = Conv2d::new(2, 3, 3, 1, 1, true, &mut rng);
        check_layer_gradients(&mut conv, &[2, 2, 4, 4], 2e-2, &mut rng);
    }

    #[test]
    fn gradcheck_strided_conv() {
        let mut rng = TensorRng::seed_from(5);
        let mut conv = Conv2d::new(2, 2, 3, 2, 1, false, &mut rng);
        check_layer_gradients(&mut conv, &[1, 2, 5, 5], 2e-2, &mut rng);
    }

    #[test]
    fn gradcheck_depthwise_conv() {
        let mut rng = TensorRng::seed_from(6);
        let mut conv = Conv2d::depthwise(3, 3, 1, 1, true, &mut rng);
        check_layer_gradients(&mut conv, &[1, 3, 4, 4], 2e-2, &mut rng);
    }

    #[test]
    fn weight_rows_are_filters() {
        let mut rng = TensorRng::seed_from(7);
        let conv = Conv2d::new(4, 16, 3, 1, 1, false, &mut rng);
        assert_eq!(conv.weight().value.dims(), &[16, 36]);
    }
}
