//! Layer implementations.
//!
//! Every layer follows the [`Layer`](crate::module::Layer) contract:
//! `forward` caches, `backward` consumes the cache and accumulates parameter
//! gradients. All layers are validated by finite-difference gradient checks in
//! their unit tests (see [`crate::gradcheck`]).

mod act;
mod bn;
mod conv;
mod dropout;
mod embedding;
mod fakequant;
mod flatten;
mod linear;
mod pool;

pub use act::{LeakyRelu, Relu, Relu6, Sigmoid, Tanh};
pub use bn::BatchNorm2d;
pub use conv::Conv2d;
pub use dropout::Dropout;
pub use embedding::Embedding;
pub use fakequant::{FakeQuant, FakeQuantConfig};
pub use flatten::Flatten;
pub use linear::Linear;
pub use pool::{AvgPool2d, GlobalAvgPool, MaxPool2d};
