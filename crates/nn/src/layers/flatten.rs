//! Flatten `[B, ...] → [B, prod(...)]`.

use crate::module::Layer;
use mixmatch_tensor::Tensor;

/// Collapses all non-batch dimensions, remembering the original shape for
/// backward.
#[derive(Debug, Default)]
pub struct Flatten {
    cached_dims: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Flatten { cached_dims: None }
    }
}

impl Layer for Flatten {
    fn lowering(&self) -> crate::lower::LayerLowering {
        crate::lower::LayerLowering::Step(crate::lower::LoweredOp::Flatten)
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let b = input.dims()[0];
        let rest: usize = input.dims()[1..].iter().product();
        if train {
            self.cached_dims = Some(input.dims().to_vec());
        }
        input.reshape(&[b, rest])
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let dims = self
            .cached_dims
            .take()
            .expect("Flatten::backward called without cached forward");
        grad_output.reshape(&dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mixmatch_tensor::TensorRng;

    #[test]
    fn flattens_and_restores() {
        let mut rng = TensorRng::seed_from(0);
        let x = Tensor::randn(&[2, 3, 4, 5], &mut rng);
        let mut f = Flatten::new();
        let y = f.forward(&x, true);
        assert_eq!(y.dims(), &[2, 60]);
        let g = f.backward(&y);
        assert_eq!(g.dims(), x.dims());
        assert_eq!(g.as_slice(), x.as_slice());
    }
}
