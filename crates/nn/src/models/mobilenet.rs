//! MobileNet-v2-style network (inverted residual blocks with depthwise conv).

use crate::layers::{
    BatchNorm2d, Conv2d, FakeQuant, FakeQuantConfig, GlobalAvgPool, Linear, Relu6,
};
use crate::module::{Layer, Param};
use crate::quantize::{QuantLayerDesc, QuantizableModel};
use mixmatch_tensor::im2col::ConvGeometry;
use mixmatch_tensor::{Tensor, TensorRng};

/// Configuration of a [`MobileNetV2`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MobileNetConfig {
    /// Input channels.
    pub in_channels: usize,
    /// Stem output width.
    pub stem_width: usize,
    /// Per block: `(expansion factor, output channels, stride)`.
    pub blocks: Vec<(usize, usize, usize)>,
    /// Output classes.
    pub num_classes: usize,
    /// When set, activations pass through fixed-point [`FakeQuant`] layers of
    /// this bit-width (the paper's W/A = m/n regime).
    pub act_bits: Option<u32>,
}

impl MobileNetConfig {
    /// A small MobileNet-v2 for CPU-feasible quantization experiments: four
    /// inverted-residual blocks with the canonical expand-depthwise-project
    /// structure.
    pub fn mini(num_classes: usize) -> Self {
        MobileNetConfig {
            in_channels: 3,
            stem_width: 8,
            blocks: vec![(1, 8, 1), (4, 12, 2), (4, 12, 1), (4, 16, 2)],
            num_classes,
            act_bits: None,
        }
    }

    /// Returns this configuration with activation quantization enabled.
    pub fn with_act_bits(mut self, bits: u32) -> Self {
        self.act_bits = Some(bits);
        self
    }

    /// The full MobileNet-v2 block table (for shape experiments; training it
    /// here is impractical on CPU).
    pub fn full(num_classes: usize) -> Self {
        let mut blocks = Vec::new();
        // (t, c, n, s) table from the MobileNet-v2 paper.
        for &(t, c, n, s) in &[
            (1usize, 16usize, 1usize, 1usize),
            (6, 24, 2, 2),
            (6, 32, 3, 2),
            (6, 64, 4, 2),
            (6, 96, 3, 1),
            (6, 160, 3, 2),
            (6, 320, 1, 1),
        ] {
            for i in 0..n {
                blocks.push((t, c, if i == 0 { s } else { 1 }));
            }
        }
        MobileNetConfig {
            in_channels: 3,
            stem_width: 32,
            blocks,
            num_classes,
            act_bits: None,
        }
    }
}

/// Inverted residual: 1×1 expand → 3×3 depthwise → 1×1 project (linear), with
/// a skip connection when stride is 1 and widths match.
struct InvertedResidual {
    expand: Option<(Conv2d, BatchNorm2d, Relu6)>,
    depthwise: Conv2d,
    dw_bn: BatchNorm2d,
    dw_act: Relu6,
    project: Conv2d,
    proj_bn: BatchNorm2d,
    use_skip: bool,
    cached_input: Option<Tensor>,
}

impl InvertedResidual {
    fn new(
        name: &str,
        in_ch: usize,
        expansion: usize,
        out_ch: usize,
        stride: usize,
        rng: &mut TensorRng,
    ) -> Self {
        let hidden = in_ch * expansion;
        let expand = (expansion != 1).then(|| {
            (
                Conv2d::with_geometry(
                    &format!("{name}.expand"),
                    ConvGeometry::new(in_ch, hidden, 1, 1, 0),
                    false,
                    rng,
                ),
                BatchNorm2d::with_name(&format!("{name}.expand_bn"), hidden),
                Relu6::new(),
            )
        });
        let depthwise = Conv2d::with_geometry(
            &format!("{name}.dw"),
            ConvGeometry::depthwise(hidden, 3, stride, 1),
            false,
            rng,
        );
        let project = Conv2d::with_geometry(
            &format!("{name}.project"),
            ConvGeometry::new(hidden, out_ch, 1, 1, 0),
            false,
            rng,
        );
        InvertedResidual {
            expand,
            depthwise,
            dw_bn: BatchNorm2d::with_name(&format!("{name}.dw_bn"), hidden),
            dw_act: Relu6::new(),
            project,
            proj_bn: BatchNorm2d::with_name(&format!("{name}.proj_bn"), out_ch),
            use_skip: stride == 1 && in_ch == out_ch,
            cached_input: None,
        }
    }
}

impl Layer for InvertedResidual {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let mut x = input.clone();
        if let Some((conv, bn, act)) = &mut self.expand {
            x = conv.forward(&x, train);
            x = bn.forward(&x, train);
            x = act.forward(&x, train);
        }
        x = self.depthwise.forward(&x, train);
        x = self.dw_bn.forward(&x, train);
        x = self.dw_act.forward(&x, train);
        x = self.project.forward(&x, train);
        x = self.proj_bn.forward(&x, train);
        if self.use_skip {
            if train {
                self.cached_input = Some(input.clone());
            }
            &x + input
        } else {
            x
        }
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let mut g = self.proj_bn.backward(grad_output);
        g = self.project.backward(&g);
        g = self.dw_act.backward(&g);
        g = self.dw_bn.backward(&g);
        g = self.depthwise.backward(&g);
        if let Some((conv, bn, act)) = &mut self.expand {
            g = act.backward(&g);
            g = bn.backward(&g);
            g = conv.backward(&g);
        }
        if self.use_skip {
            self.cached_input = None;
            &g + grad_output
        } else {
            g
        }
    }

    fn params(&self) -> Vec<&Param> {
        let mut v = Vec::new();
        if let Some((c, b, _)) = &self.expand {
            v.extend(c.params());
            v.extend(b.params());
        }
        v.extend(self.depthwise.params());
        v.extend(self.dw_bn.params());
        v.extend(self.project.params());
        v.extend(self.proj_bn.params());
        v
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut v = Vec::new();
        if let Some((c, b, _)) = &mut self.expand {
            v.extend(c.params_mut());
            v.extend(b.params_mut());
        }
        v.extend(self.depthwise.params_mut());
        v.extend(self.dw_bn.params_mut());
        v.extend(self.project.params_mut());
        v.extend(self.proj_bn.params_mut());
        v
    }
}

/// MobileNet-v2-style classifier on `[B, C, H, W]` images.
///
/// # Example
///
/// ```
/// use mixmatch_nn::models::{MobileNetV2, MobileNetConfig};
/// use mixmatch_nn::module::Layer;
/// use mixmatch_tensor::{Tensor, TensorRng};
///
/// let mut rng = TensorRng::seed_from(0);
/// let mut net = MobileNetV2::new(MobileNetConfig::mini(10), &mut rng);
/// let x = Tensor::randn(&[1, 3, 16, 16], &mut rng);
/// assert_eq!(net.forward(&x, false).dims(), &[1, 10]);
/// ```
pub struct MobileNetV2 {
    input_quant: Option<FakeQuant>,
    stem_conv: Conv2d,
    stem_bn: BatchNorm2d,
    stem_act: Relu6,
    act_quants: Vec<FakeQuant>,
    blocks: Vec<InvertedResidual>,
    pool: GlobalAvgPool,
    fc: Linear,
    config: MobileNetConfig,
}

impl MobileNetV2 {
    /// Builds the network described by `config`.
    ///
    /// # Panics
    ///
    /// Panics when the block table is empty.
    pub fn new(config: MobileNetConfig, rng: &mut TensorRng) -> Self {
        assert!(!config.blocks.is_empty(), "MobileNetV2 needs blocks");
        let stem_conv = Conv2d::with_geometry(
            "stem",
            ConvGeometry::new(config.in_channels, config.stem_width, 3, 1, 1),
            false,
            rng,
        );
        let mut blocks = Vec::new();
        let mut in_ch = config.stem_width;
        for (i, &(t, c, s)) in config.blocks.iter().enumerate() {
            blocks.push(InvertedResidual::new(
                &format!("block{i}"),
                in_ch,
                t,
                c,
                s,
                rng,
            ));
            in_ch = c;
        }
        let fc = Linear::with_name("fc", in_ch, config.num_classes, true, rng);
        let (input_quant, act_quants) = match config.act_bits {
            Some(bits) => {
                let n = blocks.len() + 1;
                // Block outputs come from a *linear* (signed) projection in
                // MobileNet-v2, so quantize them symmetrically.
                (
                    Some(FakeQuant::new(FakeQuantConfig::signed_bits(bits))),
                    (0..n)
                        .map(|_| FakeQuant::new(FakeQuantConfig::signed_bits(bits)))
                        .collect(),
                )
            }
            None => (None, Vec::new()),
        };
        MobileNetV2 {
            input_quant,
            stem_conv,
            stem_bn: BatchNorm2d::with_name("stem.bn", config.stem_width),
            stem_act: Relu6::new(),
            act_quants,
            blocks,
            pool: GlobalAvgPool::new(),
            fc,
            config,
        }
    }

    /// The configuration the network was built with.
    pub fn config(&self) -> &MobileNetConfig {
        &self.config
    }
}

impl Layer for MobileNetV2 {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let mut x = match &mut self.input_quant {
            Some(q) => q.forward(input, train),
            None => input.clone(),
        };
        x = self.stem_conv.forward(&x, train);
        x = self.stem_bn.forward(&x, train);
        x = self.stem_act.forward(&x, train);
        if let Some(q) = self.act_quants.first_mut() {
            x = q.forward(&x, train);
        }
        for (i, b) in self.blocks.iter_mut().enumerate() {
            x = b.forward(&x, train);
            if let Some(q) = self.act_quants.get_mut(i + 1) {
                x = q.forward(&x, train);
            }
        }
        let pooled = self.pool.forward(&x, train);
        self.fc.forward(&pooled, train)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let mut g = self.fc.backward(grad_output);
        g = self.pool.backward(&g);
        for (i, b) in self.blocks.iter_mut().enumerate().rev() {
            if let Some(q) = self.act_quants.get_mut(i + 1) {
                g = q.backward(&g);
            }
            g = b.backward(&g);
        }
        if let Some(q) = self.act_quants.first_mut() {
            g = q.backward(&g);
        }
        g = self.stem_act.backward(&g);
        g = self.stem_bn.backward(&g);
        g = self.stem_conv.backward(&g);
        match &mut self.input_quant {
            Some(q) => q.backward(&g),
            None => g,
        }
    }

    fn params(&self) -> Vec<&Param> {
        let mut v = Vec::new();
        v.extend(self.stem_conv.params());
        v.extend(self.stem_bn.params());
        for b in &self.blocks {
            v.extend(b.params());
        }
        v.extend(self.fc.params());
        v
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut v = Vec::new();
        v.extend(self.stem_conv.params_mut());
        v.extend(self.stem_bn.params_mut());
        for b in &mut self.blocks {
            v.extend(b.params_mut());
        }
        v.extend(self.fc.params_mut());
        v
    }
}

impl QuantizableModel for MobileNetV2 {
    fn model_params(&self) -> Vec<&Param> {
        self.params()
    }

    fn forward_batch(
        &mut self,
        inputs: &[mixmatch_tensor::Tensor],
    ) -> Option<Vec<mixmatch_tensor::Tensor>> {
        Some(crate::quantize::layer_forward_batch(self, inputs))
    }

    fn model_params_mut(&mut self) -> Vec<&mut Param> {
        self.params_mut()
    }

    fn quantizable_layers(&self) -> Vec<QuantLayerDesc> {
        let mut v = vec![QuantLayerDesc::for_conv(&self.stem_conv)];
        for b in &self.blocks {
            if let Some((conv, _, _)) = &b.expand {
                v.push(QuantLayerDesc::for_conv(conv));
            }
            v.push(QuantLayerDesc::for_conv(&b.depthwise));
            v.push(QuantLayerDesc::for_conv(&b.project));
        }
        v.extend(QuantLayerDesc::for_param(self.fc.weight()));
        v
    }

    /// Lowers the inverted-residual dataflow: stem conv → ReLU6, then per
    /// block `expand → ReLU6 → depthwise → ReLU6 → project` (the project
    /// output is linear) with a residual add where the skip applies,
    /// finished by global average pooling, flatten and the classifier
    /// GEMM. Batch-norm is skipped on the integer path (folding is future
    /// work).
    fn lower(&self) -> Option<crate::lower::LoweredGraph> {
        use crate::lower::{ActKind, GraphBuilder, PoolKind};
        let mut g = GraphBuilder::new();
        let mut x = g.input();
        x = g.conv(self.stem_conv.weight().name(), x);
        x = g.activation(ActKind::Relu6, x);
        for b in &self.blocks {
            let block_in = x;
            let mut y = block_in;
            if let Some((conv, _, _)) = &b.expand {
                y = g.conv(conv.weight().name(), y);
                y = g.activation(ActKind::Relu6, y);
            }
            y = g.conv(b.depthwise.weight().name(), y);
            y = g.activation(ActKind::Relu6, y);
            y = g.conv(b.project.weight().name(), y);
            x = if b.use_skip {
                g.residual_add(y, block_in)
            } else {
                y
            };
        }
        x = g.pool(PoolKind::GlobalAvg, x);
        x = g.flatten(x);
        x = g.gemm(self.fc.weight().name(), x);
        Some(g.finish(x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::cross_entropy;
    use crate::optim::Sgd;

    #[test]
    fn mini_shapes() {
        let mut rng = TensorRng::seed_from(0);
        let mut net = MobileNetV2::new(MobileNetConfig::mini(10), &mut rng);
        let x = Tensor::randn(&[2, 3, 16, 16], &mut rng);
        assert_eq!(net.forward(&x, false).dims(), &[2, 10]);
    }

    #[test]
    fn full_config_has_17_blocks() {
        assert_eq!(MobileNetConfig::full(1000).blocks.len(), 17);
    }

    #[test]
    fn contains_depthwise_convs() {
        let mut rng = TensorRng::seed_from(1);
        let net = MobileNetV2::new(MobileNetConfig::mini(4), &mut rng);
        let dw = net
            .params()
            .iter()
            .filter(|p| p.name().contains(".dw."))
            .count();
        assert!(dw >= 4, "expected one depthwise weight per block");
    }

    #[test]
    fn skip_connection_used_when_shapes_match() {
        let mut rng = TensorRng::seed_from(2);
        let net = MobileNetV2::new(MobileNetConfig::mini(4), &mut rng);
        // Block 2 in mini config: (4, 12, 1) after a 12-wide block → skip.
        assert!(net.blocks[2].use_skip);
        assert!(!net.blocks[1].use_skip);
    }

    #[test]
    fn one_sgd_step_reduces_loss() {
        let mut rng = TensorRng::seed_from(3);
        let mut net = MobileNetV2::new(MobileNetConfig::mini(4), &mut rng);
        let x = Tensor::randn(&[4, 3, 8, 8], &mut rng);
        let targets = [0usize, 1, 2, 3];
        let mut opt = Sgd::new(0.05);
        let y0 = net.forward(&x, true);
        let (l0, g) = cross_entropy(&y0, &targets);
        net.backward(&g);
        opt.step(&mut net.params_mut());
        net.zero_grad();
        let y1 = net.forward(&x, true);
        let (l1, _) = cross_entropy(&y1, &targets);
        assert!(l1 < l0, "loss should drop: {l0} -> {l1}");
    }
}
