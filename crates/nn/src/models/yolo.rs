//! Grid-based fully-convolutional detector (YOLO-style).
//!
//! Table V quantizes YOLO-v3 on COCO. The trainable stand-in here is a
//! YOLO-style single-anchor grid detector: a small conv backbone with stride-2
//! downsampling and a 1×1 detection head predicting, per grid cell,
//! `(tx, ty, tw, th, objectness, class scores…)`. It exercises the same
//! quantization-relevant structure — a deep FCN whose output head is
//! sensitive to weight precision — while remaining trainable on CPU.

use crate::layers::{BatchNorm2d, Conv2d, FakeQuant, FakeQuantConfig, LeakyRelu, MaxPool2d};
use crate::metrics::DetBox;
use crate::module::{Layer, Param};
use crate::quantize::{QuantLayerDesc, QuantizableModel};
use mixmatch_tensor::im2col::ConvGeometry;
use mixmatch_tensor::{Tensor, TensorRng};

/// Configuration of a [`YoloDetector`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct YoloConfig {
    /// Input image edge (square). Must be divisible by `2^downsamples`.
    pub image_size: usize,
    /// Backbone widths; each stage ends with a 2× max-pool.
    pub widths: Vec<usize>,
    /// Number of object classes.
    pub num_classes: usize,
    /// When set, activations pass through fixed-point [`FakeQuant`] layers of
    /// this bit-width.
    pub act_bits: Option<u32>,
}

impl YoloConfig {
    /// A small detector for 32×32 synthetic scenes with `classes` classes.
    pub fn mini(num_classes: usize) -> Self {
        YoloConfig {
            image_size: 32,
            widths: vec![8, 16, 32],
            num_classes,
            act_bits: None,
        }
    }

    /// Returns this configuration with activation quantization enabled.
    pub fn with_act_bits(mut self, bits: u32) -> Self {
        self.act_bits = Some(bits);
        self
    }

    /// Grid edge: image size after all downsampling stages.
    pub fn grid(&self) -> usize {
        self.image_size >> self.widths.len()
    }

    /// Channels per cell: 5 box/objectness values plus class scores.
    pub fn cell_channels(&self) -> usize {
        5 + self.num_classes
    }
}

/// Ground-truth object for the YOLO loss, in normalised image coordinates
/// (`0..1`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct YoloTarget {
    /// Centre x in `[0, 1)`.
    pub cx: f32,
    /// Centre y in `[0, 1)`.
    pub cy: f32,
    /// Width in `(0, 1]`.
    pub w: f32,
    /// Height in `(0, 1]`.
    pub h: f32,
    /// Class id.
    pub class: usize,
}

/// Grid detector producing a `[B, 5+C, S, S]` raw prediction map.
pub struct YoloDetector {
    input_quant: Option<FakeQuant>,
    stages: Vec<(Conv2d, BatchNorm2d, LeakyRelu, MaxPool2d)>,
    act_quants: Vec<FakeQuant>,
    head: Conv2d,
    config: YoloConfig,
}

impl YoloDetector {
    /// Builds the detector.
    ///
    /// # Panics
    ///
    /// Panics when `image_size` is not divisible by `2^stages`.
    pub fn new(config: YoloConfig, rng: &mut TensorRng) -> Self {
        assert!(
            config.image_size.is_multiple_of(1 << config.widths.len()),
            "image size must be divisible by 2^stages"
        );
        let mut stages = Vec::new();
        let mut in_ch = 3;
        for (i, &w) in config.widths.iter().enumerate() {
            stages.push((
                Conv2d::with_geometry(
                    &format!("backbone{i}"),
                    ConvGeometry::new(in_ch, w, 3, 1, 1),
                    false,
                    rng,
                ),
                BatchNorm2d::with_name(&format!("backbone{i}.bn"), w),
                LeakyRelu::new(),
                MaxPool2d::new(2),
            ));
            in_ch = w;
        }
        let head = Conv2d::with_geometry(
            "head",
            ConvGeometry::new(in_ch, config.cell_channels(), 1, 1, 0),
            true,
            rng,
        );
        let (input_quant, act_quants) = match config.act_bits {
            Some(bits) => (
                Some(FakeQuant::new(FakeQuantConfig::signed_bits(bits))),
                // LeakyReLU outputs are signed.
                (0..config.widths.len())
                    .map(|_| FakeQuant::new(FakeQuantConfig::signed_bits(bits)))
                    .collect(),
            ),
            None => (None, Vec::new()),
        };
        YoloDetector {
            input_quant,
            stages,
            act_quants,
            head,
            config,
        }
    }

    /// The configuration the detector was built with.
    pub fn config(&self) -> &YoloConfig {
        &self.config
    }

    /// YOLO loss on raw predictions, returning `(loss, grad_wrt_raw)`.
    ///
    /// Responsible cells (those containing an object centre) incur box MSE,
    /// objectness BCE towards 1 and class cross-entropy; all other cells only
    /// incur objectness BCE towards 0.
    ///
    /// # Panics
    ///
    /// Panics when `raw` shape disagrees with the config or `targets.len()`
    /// differs from the batch size.
    pub fn loss(&self, raw: &Tensor, targets: &[Vec<YoloTarget>]) -> (f32, Tensor) {
        let s = self.config.grid();
        let cc = self.config.cell_channels();
        let b = raw.dims()[0];
        assert_eq!(raw.dims(), &[b, cc, s, s], "raw prediction shape mismatch");
        assert_eq!(targets.len(), b, "one target list per image");
        let nc = self.config.num_classes;
        let mut grad = Tensor::zeros(raw.dims());
        let mut loss = 0.0f32;
        let lambda_box = 5.0f32;
        let lambda_noobj = 0.5f32;
        let cells = s * s;
        let norm = (b * cells) as f32;
        let sigmoid = |x: f32| 1.0 / (1.0 + (-x).exp());
        // Map (batch, channel, cell) to flat index.
        let idx = |bi: usize, ch: usize, cy: usize, cx: usize| ((bi * cc + ch) * s + cy) * s + cx;
        // Mark responsible cells.
        for bi in 0..b {
            let mut responsible: Vec<Option<&YoloTarget>> = vec![None; cells];
            for t in &targets[bi] {
                let gx = ((t.cx * s as f32) as usize).min(s - 1);
                let gy = ((t.cy * s as f32) as usize).min(s - 1);
                responsible[gy * s + gx] = Some(t);
            }
            for cy in 0..s {
                for cx in 0..s {
                    let obj_raw = raw.as_slice()[idx(bi, 4, cy, cx)];
                    let obj = sigmoid(obj_raw);
                    match responsible[cy * s + cx] {
                        Some(t) => {
                            // Box terms: predicted offsets relative to cell.
                            let tx = t.cx * s as f32 - cx as f32;
                            let ty = t.cy * s as f32 - cy as f32;
                            let targets_box = [tx, ty, t.w, t.h];
                            for (ci, &tv) in targets_box.iter().enumerate() {
                                let pr_raw = raw.as_slice()[idx(bi, ci, cy, cx)];
                                let p = sigmoid(pr_raw);
                                let diff = p - tv;
                                loss += lambda_box * diff * diff / norm;
                                grad.as_mut_slice()[idx(bi, ci, cy, cx)] +=
                                    lambda_box * 2.0 * diff * p * (1.0 - p) / norm;
                            }
                            // Objectness towards 1 (BCE through the sigmoid).
                            let eps = 1e-6f32;
                            loss += -(obj.max(eps)).ln() / norm;
                            grad.as_mut_slice()[idx(bi, 4, cy, cx)] += (obj - 1.0) / norm;
                            // Class cross-entropy (softmax over class channels).
                            let mut mx = f32::NEG_INFINITY;
                            for c in 0..nc {
                                mx = mx.max(raw.as_slice()[idx(bi, 5 + c, cy, cx)]);
                            }
                            let mut denom = 0.0f32;
                            for c in 0..nc {
                                denom += (raw.as_slice()[idx(bi, 5 + c, cy, cx)] - mx).exp();
                            }
                            for c in 0..nc {
                                let p = (raw.as_slice()[idx(bi, 5 + c, cy, cx)] - mx).exp() / denom;
                                let y = if c == t.class { 1.0 } else { 0.0 };
                                if c == t.class {
                                    loss += -(p.max(1e-6)).ln() / norm;
                                }
                                grad.as_mut_slice()[idx(bi, 5 + c, cy, cx)] += (p - y) / norm;
                            }
                        }
                        None => {
                            // Objectness towards 0, down-weighted.
                            let eps = 1e-6f32;
                            loss += -lambda_noobj * ((1.0 - obj).max(eps)).ln() / norm;
                            grad.as_mut_slice()[idx(bi, 4, cy, cx)] += lambda_noobj * obj / norm;
                        }
                    }
                }
            }
        }
        (loss, grad)
    }

    /// Decodes raw predictions into boxes (normalised coordinates), applying
    /// an objectness threshold. The caller typically follows with
    /// [`crate::metrics::nms`].
    pub fn decode(&self, raw: &Tensor, obj_threshold: f32) -> Vec<Vec<DetBox>> {
        let s = self.config.grid();
        let cc = self.config.cell_channels();
        let b = raw.dims()[0];
        let nc = self.config.num_classes;
        let sigmoid = |x: f32| 1.0 / (1.0 + (-x).exp());
        let idx = |bi: usize, ch: usize, cy: usize, cx: usize| ((bi * cc + ch) * s + cy) * s + cx;
        let mut out = Vec::with_capacity(b);
        for bi in 0..b {
            let mut boxes = Vec::new();
            for cy in 0..s {
                for cx in 0..s {
                    let obj = sigmoid(raw.as_slice()[idx(bi, 4, cy, cx)]);
                    if obj < obj_threshold {
                        continue;
                    }
                    let px = sigmoid(raw.as_slice()[idx(bi, 0, cy, cx)]);
                    let py = sigmoid(raw.as_slice()[idx(bi, 1, cy, cx)]);
                    let pw = sigmoid(raw.as_slice()[idx(bi, 2, cy, cx)]);
                    let ph = sigmoid(raw.as_slice()[idx(bi, 3, cy, cx)]);
                    // Class argmax with softmax score.
                    let mut best_c = 0usize;
                    let mut best_v = f32::NEG_INFINITY;
                    for c in 0..nc {
                        let v = raw.as_slice()[idx(bi, 5 + c, cy, cx)];
                        if v > best_v {
                            best_v = v;
                            best_c = c;
                        }
                    }
                    let mut denom = 0.0f32;
                    for c in 0..nc {
                        denom += (raw.as_slice()[idx(bi, 5 + c, cy, cx)] - best_v).exp();
                    }
                    let cls_p = 1.0 / denom;
                    boxes.push(DetBox {
                        cx: (cx as f32 + px) / s as f32,
                        cy: (cy as f32 + py) / s as f32,
                        w: pw,
                        h: ph,
                        score: obj * cls_p,
                        class: best_c,
                    });
                }
            }
            out.push(boxes);
        }
        out
    }
}

impl Layer for YoloDetector {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let mut x = match &mut self.input_quant {
            Some(q) => q.forward(input, train),
            None => input.clone(),
        };
        for (i, (conv, bn, act, pool)) in self.stages.iter_mut().enumerate() {
            x = conv.forward(&x, train);
            x = bn.forward(&x, train);
            x = act.forward(&x, train);
            x = pool.forward(&x, train);
            if let Some(q) = self.act_quants.get_mut(i) {
                x = q.forward(&x, train);
            }
        }
        self.head.forward(&x, train)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let mut g = self.head.backward(grad_output);
        for (i, (conv, bn, act, pool)) in self.stages.iter_mut().enumerate().rev() {
            if let Some(q) = self.act_quants.get_mut(i) {
                g = q.backward(&g);
            }
            g = pool.backward(&g);
            g = act.backward(&g);
            g = bn.backward(&g);
            g = conv.backward(&g);
        }
        match &mut self.input_quant {
            Some(q) => q.backward(&g),
            None => g,
        }
    }

    fn params(&self) -> Vec<&Param> {
        let mut v = Vec::new();
        for (conv, bn, _, _) in &self.stages {
            v.extend(conv.params());
            v.extend(bn.params());
        }
        v.extend(self.head.params());
        v
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut v = Vec::new();
        for (conv, bn, _, _) in &mut self.stages {
            v.extend(conv.params_mut());
            v.extend(bn.params_mut());
        }
        v.extend(self.head.params_mut());
        v
    }
}

impl QuantizableModel for YoloDetector {
    fn model_params(&self) -> Vec<&Param> {
        self.params()
    }

    fn forward_batch(
        &mut self,
        inputs: &[mixmatch_tensor::Tensor],
    ) -> Option<Vec<mixmatch_tensor::Tensor>> {
        Some(crate::quantize::layer_forward_batch(self, inputs))
    }

    fn model_params_mut(&mut self) -> Vec<&mut Param> {
        self.params_mut()
    }

    fn quantizable_layers(&self) -> Vec<QuantLayerDesc> {
        let mut v: Vec<QuantLayerDesc> = self
            .stages
            .iter()
            .map(|(conv, _, _, _)| QuantLayerDesc::for_conv(conv))
            .collect();
        v.push(QuantLayerDesc::for_conv(&self.head));
        v
    }

    /// Lowers the detector dataflow: per backbone stage
    /// `conv → LeakyReLU → 2× max-pool`, then the 1×1 detection-head conv.
    /// The output is the raw `[5+C, S, S]` prediction map; batch-norm is
    /// skipped on the integer path (folding is future work).
    fn lower(&self) -> Option<crate::lower::LoweredGraph> {
        use crate::lower::{ActKind, GraphBuilder, PoolKind};
        let mut g = GraphBuilder::new();
        let mut x = g.input();
        for (conv, _, _, pool) in &self.stages {
            x = g.conv(conv.weight().name(), x);
            x = g.activation(ActKind::LeakyRelu, x);
            x = g.pool(
                PoolKind::Max {
                    window: pool.window(),
                },
                x,
            );
        }
        x = g.conv(self.head.weight().name(), x);
        Some(g.finish(x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Sgd;

    #[test]
    fn output_grid_shape() {
        let mut rng = TensorRng::seed_from(0);
        let cfg = YoloConfig::mini(3);
        assert_eq!(cfg.grid(), 4);
        let mut net = YoloDetector::new(cfg, &mut rng);
        let x = Tensor::randn(&[2, 3, 32, 32], &mut rng);
        let y = net.forward(&x, false);
        assert_eq!(y.dims(), &[2, 8, 4, 4]);
    }

    #[test]
    fn loss_gradient_matches_finite_difference() {
        let mut rng = TensorRng::seed_from(1);
        let net = YoloDetector::new(YoloConfig::mini(2), &mut rng);
        let raw = Tensor::randn(&[1, 7, 4, 4], &mut rng);
        let targets = vec![vec![YoloTarget {
            cx: 0.3,
            cy: 0.6,
            w: 0.2,
            h: 0.25,
            class: 1,
        }]];
        let (_, grad) = net.loss(&raw, &targets);
        let h = 1e-2f32;
        for i in (0..raw.len()).step_by(7) {
            let mut rp = raw.clone();
            rp.as_mut_slice()[i] += h;
            let mut rm = raw.clone();
            rm.as_mut_slice()[i] -= h;
            let numeric = (net.loss(&rp, &targets).0 - net.loss(&rm, &targets).0) / (2.0 * h);
            let analytic = grad.as_slice()[i];
            let denom = analytic.abs().max(numeric.abs()).max(1e-3);
            assert!(
                (analytic - numeric).abs() / denom < 5e-2,
                "yolo loss grad mismatch at {i}: {analytic} vs {numeric}"
            );
        }
    }

    #[test]
    fn decode_thresholds_objectness() {
        let mut rng = TensorRng::seed_from(2);
        let net = YoloDetector::new(YoloConfig::mini(2), &mut rng);
        // All raw zero → objectness sigmoid = 0.5.
        let raw = Tensor::zeros(&[1, 7, 4, 4]);
        assert_eq!(net.decode(&raw, 0.6)[0].len(), 0);
        assert_eq!(net.decode(&raw, 0.4)[0].len(), 16);
    }

    #[test]
    fn training_step_reduces_loss() {
        let mut rng = TensorRng::seed_from(3);
        let mut net = YoloDetector::new(YoloConfig::mini(2), &mut rng);
        let x = Tensor::randn(&[2, 3, 32, 32], &mut rng);
        let targets = vec![
            vec![YoloTarget {
                cx: 0.25,
                cy: 0.25,
                w: 0.3,
                h: 0.3,
                class: 0,
            }],
            vec![YoloTarget {
                cx: 0.7,
                cy: 0.7,
                w: 0.2,
                h: 0.4,
                class: 1,
            }],
        ];
        let mut opt = Sgd::new(0.5);
        let raw0 = net.forward(&x, true);
        let (l0, g) = net.loss(&raw0, &targets);
        net.backward(&g);
        opt.step(&mut net.params_mut());
        net.zero_grad();
        let raw1 = net.forward(&x, true);
        let (l1, _) = net.loss(&raw1, &targets);
        assert!(l1 < l0, "loss should drop: {l0} -> {l1}");
    }
}
