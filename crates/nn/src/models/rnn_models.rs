//! The three RNN applications of Table VI: language modelling (perplexity),
//! frame classification (phoneme error rate) and sequence classification
//! (sentiment accuracy).

use crate::layers::{Embedding, Linear};
use crate::module::{Layer, Param};
use crate::quantize::QuantizableModel;
use crate::rnn::{Gru, Lstm};
use mixmatch_tensor::{Tensor, TensorRng};

/// Stacked-LSTM language model: embedding → N×LSTM → tied-width decoder.
///
/// Mirrors the paper's "LSTM with 256 hidden neurons in two layers on PTB"
/// at configurable scale. Input is a `[T, B]` token-id matrix; output is
/// `[T·B, vocab]` next-token logits.
pub struct LstmLanguageModel {
    embedding: Embedding,
    lstms: Vec<Lstm>,
    decoder: Linear,
    vocab: usize,
    hidden: usize,
}

impl LstmLanguageModel {
    /// Builds the model: `layers` LSTM layers of width `hidden` on
    /// `embed_dim`-dimensional embeddings.
    pub fn new(
        vocab: usize,
        embed_dim: usize,
        hidden: usize,
        layers: usize,
        rng: &mut TensorRng,
    ) -> Self {
        assert!(layers >= 1, "need at least one LSTM layer");
        let mut lstms = Vec::new();
        for l in 0..layers {
            let input = if l == 0 { embed_dim } else { hidden };
            lstms.push(Lstm::with_name(&format!("lstm{l}"), input, hidden, rng));
        }
        LstmLanguageModel {
            embedding: Embedding::new(vocab, embed_dim, rng),
            lstms,
            decoder: Linear::with_name("decoder", hidden, vocab, true, rng),
            vocab,
            hidden,
        }
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Runs the model on `[T, B]` token ids, returning `[T·B, vocab]` logits.
    pub fn forward_tokens(&mut self, tokens: &[Vec<usize>], train: bool) -> Tensor {
        let t = tokens.len();
        let b = tokens[0].len();
        // Embed all steps: ids flattened time-major.
        let flat: Vec<usize> = tokens.iter().flatten().copied().collect();
        let emb = self.embedding.lookup(&flat, train); // [T*B, E]
        let e = emb.dims()[1];
        let mut x = emb.reshape(&[t, b, e]);
        for lstm in &mut self.lstms {
            x = lstm.forward(&x, train);
        }
        let h = x.reshape(&[t * b, self.hidden]);
        self.decoder.forward(&h, train)
    }

    /// Backward pass for [`forward_tokens`](Self::forward_tokens).
    pub fn backward_tokens(&mut self, grad_logits: &Tensor, t: usize, b: usize) {
        let g = self.decoder.backward(grad_logits);
        let mut g = g.reshape(&[t, b, self.hidden]);
        for lstm in self.lstms.iter_mut().rev() {
            g = lstm.backward(&g);
        }
        let e = self.embedding.dim();
        self.embedding.lookup_backward(&g.reshape(&[t * b, e]));
    }

    /// All trainable parameters.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut v = self.embedding.params_mut();
        for l in &mut self.lstms {
            v.extend(l.params_mut());
        }
        v.extend(self.decoder.params_mut());
        v
    }

    /// All parameters (immutable).
    pub fn params(&self) -> Vec<&Param> {
        let mut v = self.embedding.params();
        for l in &self.lstms {
            v.extend(l.params());
        }
        v.extend(self.decoder.params());
        v
    }

    /// Zeroes every gradient.
    pub fn zero_grad(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }
}

/// GRU network classifying every frame of a feature sequence (TIMIT-style
/// phoneme recognition). Input `[T, B, F]`, output `[T·B, classes]`.
pub struct GruFrameClassifier {
    grus: Vec<Gru>,
    head: Linear,
    hidden: usize,
    cached_tb: Option<(usize, usize)>,
}

impl GruFrameClassifier {
    /// Builds `layers` GRU layers of width `hidden` over `features`-dim frames.
    pub fn new(
        features: usize,
        hidden: usize,
        layers: usize,
        classes: usize,
        rng: &mut TensorRng,
    ) -> Self {
        assert!(layers >= 1, "need at least one GRU layer");
        let mut grus = Vec::new();
        for l in 0..layers {
            let input = if l == 0 { features } else { hidden };
            grus.push(Gru::with_name(&format!("gru{l}"), input, hidden, rng));
        }
        GruFrameClassifier {
            grus,
            head: Linear::with_name("head", hidden, classes, true, rng),
            hidden,
            cached_tb: None,
        }
    }
}

impl Layer for GruFrameClassifier {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let (t, b) = (input.dims()[0], input.dims()[1]);
        let mut x = input.clone();
        for gru in &mut self.grus {
            x = gru.forward(&x, train);
        }
        if train {
            self.cached_tb = Some((t, b));
        }
        self.head.forward(&x.reshape(&[t * b, self.hidden]), train)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let (t, b) = self
            .cached_tb
            .take()
            .expect("GruFrameClassifier::backward without cached forward");
        let g = self.head.backward(grad_output);
        let mut g = g.reshape(&[t, b, self.hidden]);
        for gru in self.grus.iter_mut().rev() {
            g = gru.backward(&g);
        }
        g
    }

    fn params(&self) -> Vec<&Param> {
        let mut v = Vec::new();
        for gru in &self.grus {
            v.extend(gru.params());
        }
        v.extend(self.head.params());
        v
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut v = Vec::new();
        for gru in &mut self.grus {
            v.extend(gru.params_mut());
        }
        v.extend(self.head.params_mut());
        v
    }
}

/// LSTM sequence classifier (IMDB-style sentiment): embedding → N×LSTM →
/// classifier on the final hidden state. Input `[T, B]` token ids.
pub struct LstmClassifier {
    embedding: Embedding,
    lstms: Vec<Lstm>,
    head: Linear,
    hidden: usize,
    cached_tb: Option<(usize, usize)>,
}

impl LstmClassifier {
    /// Builds the classifier.
    pub fn new(
        vocab: usize,
        embed_dim: usize,
        hidden: usize,
        layers: usize,
        classes: usize,
        rng: &mut TensorRng,
    ) -> Self {
        assert!(layers >= 1, "need at least one LSTM layer");
        let mut lstms = Vec::new();
        for l in 0..layers {
            let input = if l == 0 { embed_dim } else { hidden };
            lstms.push(Lstm::with_name(&format!("lstm{l}"), input, hidden, rng));
        }
        LstmClassifier {
            embedding: Embedding::new(vocab, embed_dim, rng),
            lstms,
            head: Linear::with_name("head", hidden, classes, true, rng),
            hidden,
            cached_tb: None,
        }
    }

    /// Classifies `[T, B]` token sequences, returning `[B, classes]` logits.
    pub fn forward_tokens(&mut self, tokens: &[Vec<usize>], train: bool) -> Tensor {
        let t = tokens.len();
        let b = tokens[0].len();
        let flat: Vec<usize> = tokens.iter().flatten().copied().collect();
        let emb = self.embedding.lookup(&flat, train);
        let e = emb.dims()[1];
        let mut x = emb.reshape(&[t, b, e]);
        for lstm in &mut self.lstms {
            x = lstm.forward(&x, train);
        }
        // Final step hidden state: rows [(t-1)*b .. t*b).
        let last = Tensor::from_vec(
            x.as_slice()[(t - 1) * b * self.hidden..].to_vec(),
            &[b, self.hidden],
        )
        .expect("final step slice");
        if train {
            self.cached_tb = Some((t, b));
        }
        self.head.forward(&last, train)
    }

    /// Backward for [`forward_tokens`](Self::forward_tokens).
    pub fn backward_tokens(&mut self, grad_logits: &Tensor) {
        let (t, b) = self
            .cached_tb
            .take()
            .expect("LstmClassifier::backward_tokens without forward");
        let g_last = self.head.backward(grad_logits); // [B, H]
                                                      // Scatter into a [T, B, H] gradient that is zero except the last step.
        let mut g_seq = Tensor::zeros(&[t, b, self.hidden]);
        let off = (t - 1) * b * self.hidden;
        g_seq.as_mut_slice()[off..].copy_from_slice(g_last.as_slice());
        let mut g = g_seq;
        for lstm in self.lstms.iter_mut().rev() {
            g = lstm.backward(&g);
        }
        let e = self.embedding.dim();
        self.embedding.lookup_backward(&g.reshape(&[t * b, e]));
    }

    /// All trainable parameters.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut v = self.embedding.params_mut();
        for l in &mut self.lstms {
            v.extend(l.params_mut());
        }
        v.extend(self.head.params_mut());
        v
    }

    /// All parameters (immutable).
    pub fn params(&self) -> Vec<&Param> {
        let mut v = self.embedding.params();
        for l in &self.lstms {
            v.extend(l.params());
        }
        v.extend(self.head.params());
        v
    }

    /// Zeroes every gradient.
    pub fn zero_grad(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }
}

// The RNN models expose their quantizable layers through the name-based
// default (`w_ih`/`w_hh` → recurrent, decoder/head `.weight` → dense;
// embeddings excluded) — there is no conv geometry to attach.
impl QuantizableModel for LstmLanguageModel {
    fn model_params(&self) -> Vec<&Param> {
        self.params()
    }

    fn model_params_mut(&mut self) -> Vec<&mut Param> {
        self.params_mut()
    }
}

impl QuantizableModel for GruFrameClassifier {
    fn model_params(&self) -> Vec<&Param> {
        Layer::params(self)
    }

    fn model_params_mut(&mut self) -> Vec<&mut Param> {
        Layer::params_mut(self)
    }
}

impl QuantizableModel for LstmClassifier {
    fn model_params(&self) -> Vec<&Param> {
        self.params()
    }

    fn model_params_mut(&mut self) -> Vec<&mut Param> {
        self.params_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::cross_entropy;
    use crate::optim::Adam;

    #[test]
    fn lm_shapes_and_learning() {
        let mut rng = TensorRng::seed_from(0);
        let mut lm = LstmLanguageModel::new(12, 8, 16, 2, &mut rng);
        // Fixed sequence: predict next token of a repeating pattern.
        let tokens: Vec<Vec<usize>> = (0..6).map(|t| vec![t % 3, (t + 1) % 3]).collect();
        let targets: Vec<usize> = (0..6)
            .flat_map(|t| vec![(t + 1) % 3, (t + 2) % 3])
            .collect();
        let mut opt = Adam::new(0.01);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..30 {
            let logits = lm.forward_tokens(&tokens, true);
            assert_eq!(logits.dims(), &[12, 12]);
            let (loss, grad) = cross_entropy(&logits, &targets);
            lm.backward_tokens(&grad, 6, 2);
            opt.step(&mut lm.params_mut());
            lm.zero_grad();
            first.get_or_insert(loss);
            last = loss;
        }
        assert!(
            last < first.unwrap() * 0.7,
            "LM should learn the pattern: {} -> {last}",
            first.unwrap()
        );
    }

    #[test]
    fn classifier_uses_final_state() {
        let mut rng = TensorRng::seed_from(1);
        let mut clf = LstmClassifier::new(10, 6, 8, 1, 2, &mut rng);
        let tokens: Vec<Vec<usize>> = vec![vec![1, 2], vec![3, 4], vec![5, 6]];
        let logits = clf.forward_tokens(&tokens, false);
        assert_eq!(logits.dims(), &[2, 2]);
    }

    #[test]
    fn classifier_learns_token_presence() {
        let mut rng = TensorRng::seed_from(2);
        let mut clf = LstmClassifier::new(8, 6, 10, 1, 2, &mut rng);
        // Class is determined by the last token parity.
        let batches: Vec<(Vec<Vec<usize>>, Vec<usize>)> = (0..8)
            .map(|i| {
                let last = (i % 4) as usize;
                (vec![vec![7], vec![last]], vec![last % 2])
            })
            .collect();
        let mut opt = Adam::new(0.02);
        let mut first = None;
        let mut last_loss = 0.0;
        for _ in 0..40 {
            let mut total = 0.0;
            for (tokens, targets) in &batches {
                let logits = clf.forward_tokens(tokens, true);
                let (loss, grad) = cross_entropy(&logits, targets);
                clf.backward_tokens(&grad);
                opt.step(&mut clf.params_mut());
                clf.zero_grad();
                total += loss;
            }
            first.get_or_insert(total);
            last_loss = total;
        }
        assert!(last_loss < first.unwrap() * 0.5);
    }

    #[test]
    fn gru_frame_classifier_shapes() {
        let mut rng = TensorRng::seed_from(3);
        let mut clf = GruFrameClassifier::new(5, 12, 2, 4, &mut rng);
        let x = Tensor::randn(&[7, 3, 5], &mut rng);
        let y = clf.forward(&x, true);
        assert_eq!(y.dims(), &[21, 4]);
        let g = clf.backward(&Tensor::zeros(&[21, 4]));
        assert_eq!(g.dims(), &[7, 3, 5]);
    }
}
