//! Residual networks (CIFAR-style ResNet family, including ResNet-18 shape).

use crate::layers::{BatchNorm2d, Conv2d, FakeQuant, FakeQuantConfig, GlobalAvgPool, Linear, Relu};
use crate::module::{Layer, Param};
use crate::quantize::{QuantLayerDesc, QuantizableModel};
use mixmatch_tensor::im2col::ConvGeometry;
use mixmatch_tensor::{Tensor, TensorRng};

/// Configuration of a [`ResNet`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResNetConfig {
    /// Input channels (3 for RGB).
    pub in_channels: usize,
    /// Stem width; stage widths are `base_width · 2^stage`.
    pub base_width: usize,
    /// Residual blocks per stage.
    pub blocks_per_stage: Vec<usize>,
    /// Output classes.
    pub num_classes: usize,
    /// When set, activations (network input and every block output) pass
    /// through fixed-point [`FakeQuant`] layers of this bit-width, giving the
    /// paper's W/A = m/n regime.
    pub act_bits: Option<u32>,
}

impl ResNetConfig {
    /// ResNet-18-style configuration: four stages of two basic blocks.
    pub fn resnet18(num_classes: usize) -> Self {
        ResNetConfig {
            in_channels: 3,
            base_width: 64,
            blocks_per_stage: vec![2, 2, 2, 2],
            num_classes,
            act_bits: None,
        }
    }

    /// A small ResNet for CPU-feasible quantization experiments: three stages
    /// of one block at width 8 (≈ 30k parameters). Same block structure as
    /// ResNet-18, scaled down.
    pub fn mini(num_classes: usize) -> Self {
        ResNetConfig {
            in_channels: 3,
            base_width: 8,
            blocks_per_stage: vec![1, 1, 1],
            num_classes,
            act_bits: None,
        }
    }

    /// Returns this configuration with activation quantization enabled.
    pub fn with_act_bits(mut self, bits: u32) -> Self {
        self.act_bits = Some(bits);
        self
    }
}

/// Basic residual block: two 3×3 convs with BN/ReLU and an identity or
/// 1×1-projection shortcut.
struct BasicBlock {
    conv1: Conv2d,
    bn1: BatchNorm2d,
    relu1: Relu,
    conv2: Conv2d,
    bn2: BatchNorm2d,
    shortcut: Option<(Conv2d, BatchNorm2d)>,
    cached_pre_relu: Option<Tensor>,
}

impl BasicBlock {
    fn new(name: &str, in_ch: usize, out_ch: usize, stride: usize, rng: &mut TensorRng) -> Self {
        let conv1 = Conv2d::with_geometry(
            &format!("{name}.conv1"),
            ConvGeometry::new(in_ch, out_ch, 3, stride, 1),
            false,
            rng,
        );
        let conv2 = Conv2d::with_geometry(
            &format!("{name}.conv2"),
            ConvGeometry::new(out_ch, out_ch, 3, 1, 1),
            false,
            rng,
        );
        let shortcut = (stride != 1 || in_ch != out_ch).then(|| {
            (
                Conv2d::with_geometry(
                    &format!("{name}.downsample"),
                    ConvGeometry::new(in_ch, out_ch, 1, stride, 0),
                    false,
                    rng,
                ),
                BatchNorm2d::with_name(&format!("{name}.bn_down"), out_ch),
            )
        });
        BasicBlock {
            conv1,
            bn1: BatchNorm2d::with_name(&format!("{name}.bn1"), out_ch),
            relu1: Relu::new(),
            conv2,
            bn2: BatchNorm2d::with_name(&format!("{name}.bn2"), out_ch),
            shortcut,
            cached_pre_relu: None,
        }
    }
}

impl Layer for BasicBlock {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let mut main = self.conv1.forward(input, train);
        main = self.bn1.forward(&main, train);
        main = self.relu1.forward(&main, train);
        main = self.conv2.forward(&main, train);
        main = self.bn2.forward(&main, train);
        let residual = match &mut self.shortcut {
            Some((conv, bn)) => {
                let s = conv.forward(input, train);
                bn.forward(&s, train)
            }
            None => input.clone(),
        };
        let pre_relu = &main + &residual;
        if train {
            self.cached_pre_relu = Some(pre_relu.clone());
        }
        pre_relu.map(|x| x.max(0.0))
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let pre = self
            .cached_pre_relu
            .take()
            .expect("BasicBlock::backward without cached forward");
        let g = grad_output.zip(&pre, |go, p| if p > 0.0 { go } else { 0.0 });
        // Main branch.
        let mut gm = self.bn2.backward(&g);
        gm = self.conv2.backward(&gm);
        gm = self.relu1.backward(&gm);
        gm = self.bn1.backward(&gm);
        let gx_main = self.conv1.backward(&gm);
        // Shortcut branch.
        let gx_short = match &mut self.shortcut {
            Some((conv, bn)) => {
                let gs = bn.backward(&g);
                conv.backward(&gs)
            }
            None => g,
        };
        &gx_main + &gx_short
    }

    fn params(&self) -> Vec<&Param> {
        let mut v = Vec::new();
        v.extend(self.conv1.params());
        v.extend(self.bn1.params());
        v.extend(self.conv2.params());
        v.extend(self.bn2.params());
        if let Some((c, b)) = &self.shortcut {
            v.extend(c.params());
            v.extend(b.params());
        }
        v
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut v = Vec::new();
        v.extend(self.conv1.params_mut());
        v.extend(self.bn1.params_mut());
        v.extend(self.conv2.params_mut());
        v.extend(self.bn2.params_mut());
        if let Some((c, b)) = &mut self.shortcut {
            v.extend(c.params_mut());
            v.extend(b.params_mut());
        }
        v
    }
}

/// A residual classification network on `[B, C, H, W]` images producing
/// `[B, classes]` logits.
///
/// # Example
///
/// ```
/// use mixmatch_nn::models::{ResNet, ResNetConfig};
/// use mixmatch_nn::module::Layer;
/// use mixmatch_tensor::{Tensor, TensorRng};
///
/// let mut rng = TensorRng::seed_from(0);
/// let mut net = ResNet::new(ResNetConfig::mini(10), &mut rng);
/// let x = Tensor::randn(&[2, 3, 16, 16], &mut rng);
/// assert_eq!(net.forward(&x, false).dims(), &[2, 10]);
/// ```
pub struct ResNet {
    input_quant: Option<FakeQuant>,
    stem_conv: Conv2d,
    stem_bn: BatchNorm2d,
    stem_relu: Relu,
    /// One per block plus one after the stem, present when `act_bits` is set.
    act_quants: Vec<FakeQuant>,
    blocks: Vec<BasicBlock>,
    pool: GlobalAvgPool,
    fc: Linear,
    config: ResNetConfig,
}

impl ResNet {
    /// Builds the network described by `config`.
    ///
    /// # Panics
    ///
    /// Panics when `blocks_per_stage` is empty.
    pub fn new(config: ResNetConfig, rng: &mut TensorRng) -> Self {
        assert!(
            !config.blocks_per_stage.is_empty(),
            "ResNet needs at least one stage"
        );
        let stem_conv = Conv2d::with_geometry(
            "stem",
            ConvGeometry::new(config.in_channels, config.base_width, 3, 1, 1),
            false,
            rng,
        );
        let stem_bn = BatchNorm2d::with_name("stem.bn", config.base_width);
        let mut blocks = Vec::new();
        let mut in_ch = config.base_width;
        for (stage, &n) in config.blocks_per_stage.iter().enumerate() {
            let out_ch = config.base_width << stage;
            for b in 0..n {
                let stride = if stage > 0 && b == 0 { 2 } else { 1 };
                blocks.push(BasicBlock::new(
                    &format!("stage{stage}.block{b}"),
                    in_ch,
                    out_ch,
                    stride,
                    rng,
                ));
                in_ch = out_ch;
            }
        }
        let fc = Linear::with_name("fc", in_ch, config.num_classes, true, rng);
        let (input_quant, act_quants) = match config.act_bits {
            Some(bits) => {
                let n = blocks.len() + 1;
                let mut fq = FakeQuantConfig::act4();
                fq.bits = bits;
                (
                    Some(FakeQuant::new(FakeQuantConfig::signed_bits(bits))),
                    (0..n).map(|_| FakeQuant::new(fq)).collect(),
                )
            }
            None => (None, Vec::new()),
        };
        ResNet {
            input_quant,
            stem_conv,
            stem_bn,
            stem_relu: Relu::new(),
            act_quants,
            blocks,
            pool: GlobalAvgPool::new(),
            fc,
            config,
        }
    }

    /// The configuration the network was built with.
    pub fn config(&self) -> &ResNetConfig {
        &self.config
    }
}

impl Layer for ResNet {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let mut x = match &mut self.input_quant {
            Some(q) => q.forward(input, train),
            None => input.clone(),
        };
        x = self.stem_conv.forward(&x, train);
        x = self.stem_bn.forward(&x, train);
        x = self.stem_relu.forward(&x, train);
        if let Some(q) = self.act_quants.first_mut() {
            x = q.forward(&x, train);
        }
        for (i, b) in self.blocks.iter_mut().enumerate() {
            x = b.forward(&x, train);
            if let Some(q) = self.act_quants.get_mut(i + 1) {
                x = q.forward(&x, train);
            }
        }
        let pooled = self.pool.forward(&x, train);
        self.fc.forward(&pooled, train)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let mut g = self.fc.backward(grad_output);
        g = self.pool.backward(&g);
        for (i, b) in self.blocks.iter_mut().enumerate().rev() {
            if let Some(q) = self.act_quants.get_mut(i + 1) {
                g = q.backward(&g);
            }
            g = b.backward(&g);
        }
        if let Some(q) = self.act_quants.first_mut() {
            g = q.backward(&g);
        }
        g = self.stem_relu.backward(&g);
        g = self.stem_bn.backward(&g);
        g = self.stem_conv.backward(&g);
        match &mut self.input_quant {
            Some(q) => q.backward(&g),
            None => g,
        }
    }

    fn params(&self) -> Vec<&Param> {
        let mut v = Vec::new();
        v.extend(self.stem_conv.params());
        v.extend(self.stem_bn.params());
        for b in &self.blocks {
            v.extend(b.params());
        }
        v.extend(self.fc.params());
        v
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut v = Vec::new();
        v.extend(self.stem_conv.params_mut());
        v.extend(self.stem_bn.params_mut());
        for b in &mut self.blocks {
            v.extend(b.params_mut());
        }
        v.extend(self.fc.params_mut());
        v
    }
}

impl QuantizableModel for ResNet {
    fn model_params(&self) -> Vec<&Param> {
        self.params()
    }

    fn forward_batch(
        &mut self,
        inputs: &[mixmatch_tensor::Tensor],
    ) -> Option<Vec<mixmatch_tensor::Tensor>> {
        Some(crate::quantize::layer_forward_batch(self, inputs))
    }

    fn model_params_mut(&mut self) -> Vec<&mut Param> {
        self.params_mut()
    }

    fn quantizable_layers(&self) -> Vec<QuantLayerDesc> {
        let mut v = vec![QuantLayerDesc::for_conv(&self.stem_conv)];
        for b in &self.blocks {
            v.push(QuantLayerDesc::for_conv(&b.conv1));
            v.push(QuantLayerDesc::for_conv(&b.conv2));
            if let Some((conv, _)) = &b.shortcut {
                v.push(QuantLayerDesc::for_conv(conv));
            }
        }
        v.extend(QuantLayerDesc::for_param(self.fc.weight()));
        v
    }

    /// Lowers the residual dataflow: stem conv → ReLU, then per block
    /// `conv1 → ReLU → conv2` joined to the (possibly projected) shortcut
    /// by a residual add and a trailing ReLU, finished by global average
    /// pooling, flatten and the classifier GEMM. Batch-norm is skipped on
    /// the integer path (folding is future work); a `Requantize` step
    /// follows the stem and each block when the model was built with
    /// `act_bits`, mirroring its `FakeQuant` layers.
    fn lower(&self) -> Option<crate::lower::LoweredGraph> {
        use crate::lower::{ActKind, GraphBuilder, PoolKind};
        let mut g = GraphBuilder::new();
        let mut x = g.input();
        x = g.conv(self.stem_conv.weight().name(), x);
        x = g.activation(ActKind::Relu, x);
        if !self.act_quants.is_empty() {
            x = g.requantize(x);
        }
        for b in &self.blocks {
            let block_in = x;
            let mut y = g.conv(b.conv1.weight().name(), block_in);
            y = g.activation(ActKind::Relu, y);
            y = g.conv(b.conv2.weight().name(), y);
            let shortcut = match &b.shortcut {
                Some((conv, _)) => g.conv(conv.weight().name(), block_in),
                None => block_in,
            };
            x = g.residual_add(y, shortcut);
            x = g.activation(ActKind::Relu, x);
            if !self.act_quants.is_empty() {
                x = g.requantize(x);
            }
        }
        x = g.pool(PoolKind::GlobalAvg, x);
        x = g.flatten(x);
        x = g.gemm(self.fc.weight().name(), x);
        Some(g.finish(x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::cross_entropy;
    use crate::optim::Sgd;

    #[test]
    fn mini_resnet_shapes() {
        let mut rng = TensorRng::seed_from(0);
        let mut net = ResNet::new(ResNetConfig::mini(10), &mut rng);
        let x = Tensor::randn(&[2, 3, 16, 16], &mut rng);
        let y = net.forward(&x, false);
        assert_eq!(y.dims(), &[2, 10]);
    }

    #[test]
    fn resnet18_has_expected_block_count() {
        let mut rng = TensorRng::seed_from(1);
        let net = ResNet::new(
            ResNetConfig {
                in_channels: 3,
                base_width: 4, // tiny width, real 18-layer depth
                blocks_per_stage: vec![2, 2, 2, 2],
                num_classes: 10,
                act_bits: None,
            },
            &mut rng,
        );
        assert_eq!(net.blocks.len(), 8);
        // 8 blocks × 2 convs + 3 downsample convs + stem + fc = 21 weighted
        // layers; count weight params (conv weights + fc weight).
        let weights = net
            .params()
            .iter()
            .filter(|p| p.name().ends_with(".weight"))
            .count();
        assert_eq!(weights, 8 * 2 + 3 + 1 + 1);
    }

    #[test]
    fn backward_produces_input_gradient() {
        let mut rng = TensorRng::seed_from(2);
        let mut net = ResNet::new(ResNetConfig::mini(4), &mut rng);
        let x = Tensor::randn(&[2, 3, 8, 8], &mut rng);
        let y = net.forward(&x, true);
        let (_, grad) = cross_entropy(&y, &[0, 1]);
        let gx = net.backward(&grad);
        assert_eq!(gx.dims(), x.dims());
        assert!(gx.norm() > 0.0);
    }

    #[test]
    fn quantized_activation_mode_trains() {
        let mut rng = TensorRng::seed_from(9);
        let mut net = ResNet::new(ResNetConfig::mini(4).with_act_bits(4), &mut rng);
        let x = Tensor::randn(&[2, 3, 8, 8], &mut rng);
        let y = net.forward(&x, true);
        let (_, g) = cross_entropy(&y, &[0, 1]);
        let gx = net.backward(&g);
        assert_eq!(gx.dims(), x.dims());
        // Clip thresholds must have calibrated away from the initial 1.0
        // default or stayed finite.
        assert!(net.act_quants.iter().all(|q| q.clip_value() > 0.0));
    }

    #[test]
    fn one_sgd_step_reduces_loss_on_fixed_batch() {
        let mut rng = TensorRng::seed_from(3);
        let mut net = ResNet::new(ResNetConfig::mini(4), &mut rng);
        let x = Tensor::randn(&[4, 3, 8, 8], &mut rng);
        let targets = [0usize, 1, 2, 3];
        let mut opt = Sgd::new(0.05);
        let y0 = net.forward(&x, true);
        let (l0, g) = cross_entropy(&y0, &targets);
        net.backward(&g);
        opt.step(&mut net.params_mut());
        net.zero_grad();
        let y1 = net.forward(&x, true);
        let (l1, _) = cross_entropy(&y1, &targets);
        assert!(l1 < l0, "loss should drop: {l0} -> {l1}");
    }
}
