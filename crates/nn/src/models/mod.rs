//! Model families evaluated in the paper.
//!
//! Full-size topologies (ResNet-18, MobileNet-v2, YOLO-v3, the PTB/TIMIT/IMDB
//! RNNs) exist as *shape workloads* in `mixmatch-fpga` for the performance
//! tables; here we provide **trainable** networks with the same block
//! structure at configurable scale, so the accuracy experiments run in
//! CPU-feasible time while exercising identical layer types (residual blocks,
//! inverted residuals with depthwise conv, detection heads, stacked
//! LSTM/GRU).

mod mobilenet;
mod resnet;
mod rnn_models;
mod yolo;

pub use mobilenet::{MobileNetConfig, MobileNetV2};
pub use resnet::{ResNet, ResNetConfig};
pub use rnn_models::{GruFrameClassifier, LstmClassifier, LstmLanguageModel};
pub use yolo::{YoloConfig, YoloDetector, YoloTarget};
