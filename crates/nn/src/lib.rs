//! # mixmatch-nn
//!
//! Neural-network substrate for the Mix-and-Match reproduction.
//!
//! The paper trains CNNs (ResNet-18, MobileNet-v2, YOLO-v3) and RNNs
//! (LSTM, GRU) under quantization; this crate supplies those model families,
//! their layers with hand-written forward/backward passes, losses, optimizers
//! and evaluation metrics — all on top of [`mixmatch_tensor`].
//!
//! Design notes:
//!
//! * **No autograd tape.** Every layer implements [`Layer::forward`] /
//!   [`Layer::backward`] explicitly and caches what it needs. This keeps the
//!   computation auditable and makes it trivial for `mixmatch-quant` to
//!   interpose weight projection and activation quantization (STE) at exact,
//!   known points.
//! * **Parameters are named.** [`Param`] carries a stable name so the
//!   quantization layer can report per-layer statistics and per-row scheme
//!   assignments the way the paper's tables do.
//!
//! # Example
//!
//! ```
//! use mixmatch_nn::layers::Linear;
//! use mixmatch_nn::module::Layer;
//! use mixmatch_tensor::{Tensor, TensorRng};
//!
//! let mut rng = TensorRng::seed_from(0);
//! let mut fc = Linear::new(8, 4, true, &mut rng);
//! let x = Tensor::randn(&[2, 8], &mut rng);
//! let y = fc.forward(&x, true);
//! assert_eq!(y.dims(), &[2, 4]);
//! ```

// Index-heavy numerical kernels read more clearly with explicit loops.
#![allow(clippy::needless_range_loop)]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gradcheck;
pub mod init;
pub mod layers;
pub mod loss;
pub mod lower;
pub mod metrics;
pub mod models;
pub mod module;
pub mod optim;
pub mod quantize;
pub mod rnn;

pub use lower::{ActKind, GraphBuilder, LoweredGraph, LoweredOp, PoolKind};
pub use module::{Layer, Param};
pub use quantize::{QuantLayerDesc, QuantLayerKind, QuantizableModel};
