//! Weight initialisation schemes.

use mixmatch_tensor::{Tensor, TensorRng};

/// Kaiming/He normal initialisation for ReLU networks: `N(0, sqrt(2/fan_in))`.
///
/// # Panics
///
/// Panics when `fan_in == 0`.
pub fn kaiming_normal(dims: &[usize], fan_in: usize, rng: &mut TensorRng) -> Tensor {
    assert!(fan_in > 0, "fan_in must be positive");
    let std = (2.0 / fan_in as f32).sqrt();
    let mut t = Tensor::randn(dims, rng);
    t.scale_inplace(std);
    t
}

/// Xavier/Glorot uniform initialisation: `U(-a, a)`, `a = sqrt(6/(fan_in+fan_out))`.
///
/// # Panics
///
/// Panics when `fan_in + fan_out == 0`.
pub fn xavier_uniform(
    dims: &[usize],
    fan_in: usize,
    fan_out: usize,
    rng: &mut TensorRng,
) -> Tensor {
    assert!(fan_in + fan_out > 0, "fan_in + fan_out must be positive");
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    Tensor::rand_uniform(dims, -a, a, rng)
}

/// Uniform initialisation in `±1/sqrt(fan_in)`, the PyTorch default for
/// linear and recurrent weights.
///
/// # Panics
///
/// Panics when `fan_in == 0`.
pub fn lecun_uniform(dims: &[usize], fan_in: usize, rng: &mut TensorRng) -> Tensor {
    assert!(fan_in > 0, "fan_in must be positive");
    let a = 1.0 / (fan_in as f32).sqrt();
    Tensor::rand_uniform(dims, -a, a, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mixmatch_tensor::stats;

    #[test]
    fn kaiming_std_scales_with_fan_in() {
        let mut rng = TensorRng::seed_from(7);
        let t = kaiming_normal(&[200, 50], 50, &mut rng);
        let sd = stats::std_dev(t.as_slice());
        let expect = (2.0f32 / 50.0).sqrt();
        assert!(
            (sd - expect).abs() / expect < 0.1,
            "sd={sd} expect={expect}"
        );
    }

    #[test]
    fn xavier_respects_bound() {
        let mut rng = TensorRng::seed_from(8);
        let t = xavier_uniform(&[64, 64], 64, 64, &mut rng);
        let a = (6.0f32 / 128.0).sqrt();
        assert!(t.max() <= a && t.min() >= -a);
    }

    #[test]
    fn lecun_respects_bound() {
        let mut rng = TensorRng::seed_from(9);
        let t = lecun_uniform(&[32, 16], 16, &mut rng);
        assert!(t.max() <= 0.25 && t.min() >= -0.25);
    }
}
