//! Recurrent layers: LSTM and GRU with full backpropagation through time.
//!
//! The paper's RNN benchmarks (Table VI) quantize a 2×256 LSTM (PTB), a
//! 2×1024 GRU (TIMIT) and a 3×512 LSTM (IMDB). Both cells here store their
//! input-to-hidden and hidden-to-hidden weights as `[gates·H, I]` / `[gates·H,
//! H]` matrices — **rows are gate units**, so MSQ's row-wise scheme assignment
//! applies to them exactly as to conv filters.
//!
//! Sequences are rank-3 tensors `[T, B, I]` (time-major).

use crate::init;
use crate::module::{Layer, Param};
use mixmatch_tensor::{gemm, Tensor, TensorRng};

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Computes `x · Wᵀ + h · Uᵀ (+ bias)` for one time step: `[B, G·H]`.
fn gate_preact(x: &Tensor, w: &Tensor, h: &Tensor, u: &Tensor, bias: &Tensor) -> Tensor {
    let mut z = x.matmul(&w.transpose());
    let zh = h.matmul(&u.transpose());
    z.axpy(1.0, &zh);
    let b = z.dims()[0];
    for r in 0..b {
        let row = z.row_mut(r);
        for (j, v) in row.iter_mut().enumerate() {
            *v += bias.as_slice()[j];
        }
    }
    z
}

/// Splits `[T, B, I]` into per-step `[B, I]` tensors.
fn split_steps(seq: &Tensor) -> Vec<Tensor> {
    assert_eq!(seq.shape().rank(), 3, "sequence tensors are [T, B, I]");
    let (t, b, i) = (seq.dims()[0], seq.dims()[1], seq.dims()[2]);
    (0..t)
        .map(|s| {
            Tensor::from_vec(seq.as_slice()[s * b * i..(s + 1) * b * i].to_vec(), &[b, i])
                .expect("contiguous step slice")
        })
        .collect()
}

/// Stacks per-step `[B, H]` tensors into `[T, B, H]`.
fn stack_steps(steps: &[Tensor]) -> Tensor {
    let (b, h) = (steps[0].dims()[0], steps[0].dims()[1]);
    let mut data = Vec::with_capacity(steps.len() * b * h);
    for s in steps {
        data.extend_from_slice(s.as_slice());
    }
    Tensor::from_vec(data, &[steps.len(), b, h]).expect("stacked steps")
}

struct LstmStepCache {
    x: Tensor,
    h_prev: Tensor,
    c_prev: Tensor,
    gates: Tensor, // [B, 4H] post-activation: i | f | g | o
    tanh_c: Tensor,
}

/// Single-layer LSTM over a `[T, B, I]` sequence, returning `[T, B, H]`.
///
/// Gate layout in the stacked weight matrices is `i | f | g | o`.
pub struct Lstm {
    w_ih: Param,
    w_hh: Param,
    bias: Param,
    input_size: usize,
    hidden_size: usize,
    cache: Option<Vec<LstmStepCache>>,
}

impl Lstm {
    /// Creates an LSTM layer with LeCun-uniform init and forget-gate bias 1.
    pub fn new(input_size: usize, hidden_size: usize, rng: &mut TensorRng) -> Self {
        Self::with_name("lstm", input_size, hidden_size, rng)
    }

    /// Creates an LSTM layer with named parameters.
    pub fn with_name(
        name: &str,
        input_size: usize,
        hidden_size: usize,
        rng: &mut TensorRng,
    ) -> Self {
        let w_ih = Param::new(
            format!("{name}.w_ih"),
            init::lecun_uniform(&[4 * hidden_size, input_size], input_size, rng),
        );
        let w_hh = Param::new(
            format!("{name}.w_hh"),
            init::lecun_uniform(&[4 * hidden_size, hidden_size], hidden_size, rng),
        );
        let mut bias = Tensor::zeros(&[4 * hidden_size]);
        // Forget-gate bias at 1.0 is standard practice for trainability.
        for j in hidden_size..2 * hidden_size {
            bias.as_mut_slice()[j] = 1.0;
        }
        Lstm {
            w_ih,
            w_hh,
            bias: Param::new(format!("{name}.bias"), bias),
            input_size,
            hidden_size,
            cache: None,
        }
    }

    /// Hidden state width.
    pub fn hidden_size(&self) -> usize {
        self.hidden_size
    }

    /// Input width.
    pub fn input_size(&self) -> usize {
        self.input_size
    }

    /// The `[4H, I]` input-to-hidden weight.
    pub fn w_ih_mut(&mut self) -> &mut Param {
        &mut self.w_ih
    }

    /// The `[4H, H]` hidden-to-hidden weight.
    pub fn w_hh_mut(&mut self) -> &mut Param {
        &mut self.w_hh
    }

    fn step(
        &self,
        x: &Tensor,
        h_prev: &Tensor,
        c_prev: &Tensor,
    ) -> (Tensor, Tensor, Tensor, Tensor) {
        let hs = self.hidden_size;
        let z = gate_preact(
            x,
            &self.w_ih.value,
            h_prev,
            &self.w_hh.value,
            &self.bias.value,
        );
        let b = x.dims()[0];
        let mut gates = Tensor::zeros(&[b, 4 * hs]);
        let mut c = Tensor::zeros(&[b, hs]);
        let mut tanh_c = Tensor::zeros(&[b, hs]);
        let mut h = Tensor::zeros(&[b, hs]);
        for r in 0..b {
            let zr = z.row(r);
            let gr = gates.row_mut(r);
            for j in 0..hs {
                gr[j] = sigmoid(zr[j]); // i
                gr[hs + j] = sigmoid(zr[hs + j]); // f
                gr[2 * hs + j] = zr[2 * hs + j].tanh(); // g
                gr[3 * hs + j] = sigmoid(zr[3 * hs + j]); // o
            }
            for j in 0..hs {
                let cv = gr[hs + j] * c_prev.row(r)[j] + gr[j] * gr[2 * hs + j];
                c.row_mut(r)[j] = cv;
                let tc = cv.tanh();
                tanh_c.row_mut(r)[j] = tc;
                h.row_mut(r)[j] = gr[3 * hs + j] * tc;
            }
        }
        (h, c, gates, tanh_c)
    }
}

impl Layer for Lstm {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let steps = split_steps(input);
        let b = steps[0].dims()[0];
        assert_eq!(
            steps[0].dims()[1],
            self.input_size,
            "LSTM input width mismatch"
        );
        let mut h = Tensor::zeros(&[b, self.hidden_size]);
        let mut c = Tensor::zeros(&[b, self.hidden_size]);
        let mut outputs = Vec::with_capacity(steps.len());
        let mut cache = Vec::with_capacity(steps.len());
        for x in &steps {
            let (h_new, c_new, gates, tanh_c) = self.step(x, &h, &c);
            if train {
                cache.push(LstmStepCache {
                    x: x.clone(),
                    h_prev: h.clone(),
                    c_prev: c.clone(),
                    gates,
                    tanh_c,
                });
            }
            h = h_new.clone();
            c = c_new;
            outputs.push(h_new);
        }
        if train {
            self.cache = Some(cache);
        }
        stack_steps(&outputs)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let cache = self
            .cache
            .take()
            .expect("Lstm::backward called without cached forward");
        let hs = self.hidden_size;
        let go_steps = split_steps(grad_output);
        let b = go_steps[0].dims()[0];
        let mut dh_next = Tensor::zeros(&[b, hs]);
        let mut dc_next = Tensor::zeros(&[b, hs]);
        let mut dx_steps = vec![Tensor::zeros(&[b, self.input_size]); cache.len()];
        for t in (0..cache.len()).rev() {
            let sc = &cache[t];
            let mut dh = go_steps[t].clone();
            dh.axpy(1.0, &dh_next);
            let mut dz = Tensor::zeros(&[b, 4 * hs]);
            let mut dc_prev = Tensor::zeros(&[b, hs]);
            for r in 0..b {
                let g = sc.gates.row(r);
                for j in 0..hs {
                    let (i, f, gg, o) = (g[j], g[hs + j], g[2 * hs + j], g[3 * hs + j]);
                    let tc = sc.tanh_c.row(r)[j];
                    let dhv = dh.row(r)[j];
                    let do_ = dhv * tc;
                    let dct = dhv * o * (1.0 - tc * tc) + dc_next.row(r)[j];
                    let di = dct * gg;
                    let df = dct * sc.c_prev.row(r)[j];
                    let dg = dct * i;
                    dc_prev.row_mut(r)[j] = dct * f;
                    let dzr = dz.row_mut(r);
                    dzr[j] = di * i * (1.0 - i);
                    dzr[hs + j] = df * f * (1.0 - f);
                    dzr[2 * hs + j] = dg * (1.0 - gg * gg);
                    dzr[3 * hs + j] = do_ * o * (1.0 - o);
                }
            }
            // Parameter grads: dW_ih += dzᵀ·x ; dW_hh += dzᵀ·h_prev ; db += Σ dz
            gemm::gemm_accumulate(
                dz.transpose().as_slice(),
                sc.x.as_slice(),
                self.w_ih.grad.as_mut_slice(),
                4 * hs,
                b,
                self.input_size,
            );
            gemm::gemm_accumulate(
                dz.transpose().as_slice(),
                sc.h_prev.as_slice(),
                self.w_hh.grad.as_mut_slice(),
                4 * hs,
                b,
                hs,
            );
            for r in 0..b {
                for (j, &v) in dz.row(r).iter().enumerate() {
                    self.bias.grad.as_mut_slice()[j] += v;
                }
            }
            dx_steps[t] = dz.matmul(&self.w_ih.value);
            dh_next = dz.matmul(&self.w_hh.value);
            dc_next = dc_prev;
        }
        stack_steps(&dx_steps)
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.w_ih, &self.w_hh, &self.bias]
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.w_ih, &mut self.w_hh, &mut self.bias]
    }
}

struct GruStepCache {
    x: Tensor,
    h_prev: Tensor,
    r: Tensor,
    z: Tensor,
    n: Tensor,
    hn_pre: Tensor, // U_n·h_prev + b_hn (needed for dr)
}

/// Single-layer GRU over a `[T, B, I]` sequence, returning `[T, B, H]`.
///
/// Gate layout is `r | z | n`, with the PyTorch-style reset-gate placement
/// `n = tanh(W_n x + b_in + r ⊙ (U_n h + b_hn))`.
pub struct Gru {
    w_ih: Param, // [3H, I]
    w_hh: Param, // [3H, H]
    bias_ih: Param,
    bias_hh: Param,
    input_size: usize,
    hidden_size: usize,
    cache: Option<Vec<GruStepCache>>,
}

impl Gru {
    /// Creates a GRU layer with LeCun-uniform init.
    pub fn new(input_size: usize, hidden_size: usize, rng: &mut TensorRng) -> Self {
        Self::with_name("gru", input_size, hidden_size, rng)
    }

    /// Creates a GRU layer with named parameters.
    pub fn with_name(
        name: &str,
        input_size: usize,
        hidden_size: usize,
        rng: &mut TensorRng,
    ) -> Self {
        Gru {
            w_ih: Param::new(
                format!("{name}.w_ih"),
                init::lecun_uniform(&[3 * hidden_size, input_size], input_size, rng),
            ),
            w_hh: Param::new(
                format!("{name}.w_hh"),
                init::lecun_uniform(&[3 * hidden_size, hidden_size], hidden_size, rng),
            ),
            bias_ih: Param::new(format!("{name}.bias_ih"), Tensor::zeros(&[3 * hidden_size])),
            bias_hh: Param::new(format!("{name}.bias_hh"), Tensor::zeros(&[3 * hidden_size])),
            input_size,
            hidden_size,
            cache: None,
        }
    }

    /// Hidden state width.
    pub fn hidden_size(&self) -> usize {
        self.hidden_size
    }

    /// The `[3H, I]` input-to-hidden weight.
    pub fn w_ih_mut(&mut self) -> &mut Param {
        &mut self.w_ih
    }

    /// The `[3H, H]` hidden-to-hidden weight.
    pub fn w_hh_mut(&mut self) -> &mut Param {
        &mut self.w_hh
    }
}

impl Layer for Gru {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let steps = split_steps(input);
        let b = steps[0].dims()[0];
        assert_eq!(
            steps[0].dims()[1],
            self.input_size,
            "GRU input width mismatch"
        );
        let hs = self.hidden_size;
        let mut h = Tensor::zeros(&[b, hs]);
        let mut outputs = Vec::with_capacity(steps.len());
        let mut cache = Vec::with_capacity(steps.len());
        for x in &steps {
            let zi = x.matmul(&self.w_ih.value.transpose()); // [B, 3H]
            let zh = h.matmul(&self.w_hh.value.transpose()); // [B, 3H]
            let mut r = Tensor::zeros(&[b, hs]);
            let mut z = Tensor::zeros(&[b, hs]);
            let mut n = Tensor::zeros(&[b, hs]);
            let mut hn_pre = Tensor::zeros(&[b, hs]);
            let mut h_new = Tensor::zeros(&[b, hs]);
            for row in 0..b {
                for j in 0..hs {
                    let bi = self.bias_ih.value.as_slice();
                    let bh = self.bias_hh.value.as_slice();
                    let rv = sigmoid(zi.row(row)[j] + bi[j] + zh.row(row)[j] + bh[j]);
                    let zv = sigmoid(
                        zi.row(row)[hs + j] + bi[hs + j] + zh.row(row)[hs + j] + bh[hs + j],
                    );
                    let hn = zh.row(row)[2 * hs + j] + bh[2 * hs + j];
                    let nv = (zi.row(row)[2 * hs + j] + bi[2 * hs + j] + rv * hn).tanh();
                    r.row_mut(row)[j] = rv;
                    z.row_mut(row)[j] = zv;
                    n.row_mut(row)[j] = nv;
                    hn_pre.row_mut(row)[j] = hn;
                    h_new.row_mut(row)[j] = (1.0 - zv) * nv + zv * h.row(row)[j];
                }
            }
            if train {
                cache.push(GruStepCache {
                    x: x.clone(),
                    h_prev: h.clone(),
                    r,
                    z,
                    n,
                    hn_pre,
                });
            }
            h = h_new.clone();
            outputs.push(h_new);
        }
        if train {
            self.cache = Some(cache);
        }
        stack_steps(&outputs)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let cache = self
            .cache
            .take()
            .expect("Gru::backward called without cached forward");
        let hs = self.hidden_size;
        let go_steps = split_steps(grad_output);
        let b = go_steps[0].dims()[0];
        let mut dh_next = Tensor::zeros(&[b, hs]);
        let mut dx_steps = vec![Tensor::zeros(&[b, self.input_size]); cache.len()];
        for t in (0..cache.len()).rev() {
            let sc = &cache[t];
            let mut dh = go_steps[t].clone();
            dh.axpy(1.0, &dh_next);
            // dzi: grads w.r.t. x·W_ihᵀ pre-activations; dzh w.r.t. h·W_hhᵀ.
            let mut dzi = Tensor::zeros(&[b, 3 * hs]);
            let mut dzh = Tensor::zeros(&[b, 3 * hs]);
            let mut dh_prev = Tensor::zeros(&[b, hs]);
            for row in 0..b {
                for j in 0..hs {
                    let (r, z, n) = (sc.r.row(row)[j], sc.z.row(row)[j], sc.n.row(row)[j]);
                    let hp = sc.h_prev.row(row)[j];
                    let dhv = dh.row(row)[j];
                    let dz = dhv * (hp - n);
                    let dn = dhv * (1.0 - z);
                    let dn_pre = dn * (1.0 - n * n);
                    let dr = dn_pre * sc.hn_pre.row(row)[j];
                    let dr_pre = dr * r * (1.0 - r);
                    let dz_pre = dz * z * (1.0 - z);
                    dzi.row_mut(row)[j] = dr_pre;
                    dzi.row_mut(row)[hs + j] = dz_pre;
                    dzi.row_mut(row)[2 * hs + j] = dn_pre;
                    dzh.row_mut(row)[j] = dr_pre;
                    dzh.row_mut(row)[hs + j] = dz_pre;
                    dzh.row_mut(row)[2 * hs + j] = dn_pre * r;
                    dh_prev.row_mut(row)[j] = dhv * z;
                }
            }
            gemm::gemm_accumulate(
                dzi.transpose().as_slice(),
                sc.x.as_slice(),
                self.w_ih.grad.as_mut_slice(),
                3 * hs,
                b,
                self.input_size,
            );
            gemm::gemm_accumulate(
                dzh.transpose().as_slice(),
                sc.h_prev.as_slice(),
                self.w_hh.grad.as_mut_slice(),
                3 * hs,
                b,
                hs,
            );
            for row in 0..b {
                for (j, &v) in dzi.row(row).iter().enumerate() {
                    self.bias_ih.grad.as_mut_slice()[j] += v;
                }
                for (j, &v) in dzh.row(row).iter().enumerate() {
                    self.bias_hh.grad.as_mut_slice()[j] += v;
                }
            }
            dx_steps[t] = dzi.matmul(&self.w_ih.value);
            dh_next = &dzh.matmul(&self.w_hh.value) + &dh_prev;
        }
        stack_steps(&dx_steps)
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.w_ih, &self.w_hh, &self.bias_ih, &self.bias_hh]
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![
            &mut self.w_ih,
            &mut self.w_hh,
            &mut self.bias_ih,
            &mut self.bias_hh,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_layer_gradients;

    #[test]
    fn lstm_output_shape() {
        let mut rng = TensorRng::seed_from(0);
        let mut lstm = Lstm::new(5, 7, &mut rng);
        let x = Tensor::randn(&[4, 2, 5], &mut rng);
        let y = lstm.forward(&x, false);
        assert_eq!(y.dims(), &[4, 2, 7]);
    }

    #[test]
    fn lstm_hidden_state_carries_information() {
        // Same input at every step: outputs must evolve (h changes), so the
        // first and last step outputs differ.
        let mut rng = TensorRng::seed_from(1);
        let mut lstm = Lstm::new(3, 4, &mut rng);
        let step = Tensor::randn(&[1, 3], &mut rng);
        let mut data = Vec::new();
        for _ in 0..6 {
            data.extend_from_slice(step.as_slice());
        }
        let x = Tensor::from_vec(data, &[6, 1, 3]).unwrap();
        let y = lstm.forward(&x, false);
        let first = &y.as_slice()[0..4];
        let last = &y.as_slice()[20..24];
        assert!(first.iter().zip(last).any(|(a, b)| (a - b).abs() > 1e-4));
    }

    #[test]
    fn lstm_gradcheck() {
        let mut rng = TensorRng::seed_from(2);
        let mut lstm = Lstm::new(3, 4, &mut rng);
        check_layer_gradients(&mut lstm, &[3, 2, 3], 3e-2, &mut rng);
    }

    #[test]
    fn gru_output_shape() {
        let mut rng = TensorRng::seed_from(3);
        let mut gru = Gru::new(5, 6, &mut rng);
        let x = Tensor::randn(&[4, 3, 5], &mut rng);
        let y = gru.forward(&x, false);
        assert_eq!(y.dims(), &[4, 3, 6]);
    }

    #[test]
    fn gru_gradcheck() {
        let mut rng = TensorRng::seed_from(4);
        let mut gru = Gru::new(3, 4, &mut rng);
        check_layer_gradients(&mut gru, &[3, 2, 3], 3e-2, &mut rng);
    }

    #[test]
    fn gru_forgets_with_z_one() {
        // Forcing the update gate to saturate at 1 (huge positive bias) makes
        // h_t ≈ h_{t-1} = 0 forever.
        let mut rng = TensorRng::seed_from(5);
        let mut gru = Gru::new(2, 3, &mut rng);
        for j in 3..6 {
            gru.bias_ih.value.as_mut_slice()[j] = 50.0;
        }
        let x = Tensor::randn(&[5, 1, 2], &mut rng);
        let y = gru.forward(&x, false);
        assert!(y.as_slice().iter().all(|&v| v.abs() < 1e-4));
    }

    #[test]
    fn weight_matrices_expose_gate_rows() {
        let mut rng = TensorRng::seed_from(6);
        let lstm = Lstm::new(8, 16, &mut rng);
        assert_eq!(lstm.params()[0].value.dims(), &[64, 8]);
        let gru = Gru::new(8, 16, &mut rng);
        assert_eq!(gru.params()[0].value.dims(), &[48, 8]);
    }
}
