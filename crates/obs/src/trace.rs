//! Tracing core: thread-safe span/event recording with a chrome://tracing
//! exporter.
//!
//! Recording is designed for the engine's hot paths: each thread appends
//! into a thread-local buffer (no locking), which is drained into a bounded
//! global ring whenever a top-level span closes or the local buffer fills.
//! Timestamps are microseconds from a process-wide monotonic epoch, so
//! events from different threads order correctly.
//!
//! Tracing is **off by default**: every entry point checks one relaxed
//! atomic and returns a no-op guard when disabled, so instrumented code
//! costs a couple of nanoseconds per span when nobody is looking.
//!
//! ```
//! mixmatch_obs::trace::enable(true);
//! {
//!     let _outer = mixmatch_obs::trace::span("demo", "outer");
//!     let _inner = mixmatch_obs::trace::span("demo", "inner");
//! }
//! let events = mixmatch_obs::trace::drain();
//! assert_eq!(events.len(), 2);
//! let json = mixmatch_obs::trace::chrome_trace(&events);
//! assert!(json.contains("\"ph\":\"X\""));
//! mixmatch_obs::trace::enable(false);
//! ```

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Default capacity of the global event ring.
pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;

/// How many events a thread buffers locally before force-flushing.
const LOCAL_BUF_LIMIT: usize = 256;

/// What kind of trace event was recorded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A complete span with a start and a duration.
    Span,
    /// A zero-duration point-in-time marker.
    Instant,
}

/// One recorded trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Span or marker name.
    pub name: String,
    /// Category label, used as the chrome-trace `cat` field.
    pub cat: &'static str,
    /// Process-unique id of the recording thread.
    pub tid: u64,
    /// Start time in microseconds since the trace epoch.
    pub ts_us: u64,
    /// Duration in microseconds (zero for instants).
    pub dur_us: u64,
    /// Nesting depth at the time the span was opened (0 = top level).
    pub depth: u32,
    /// Whether this is a span or an instant marker.
    pub kind: EventKind,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds elapsed since the process-wide trace epoch.
pub fn now_us() -> u64 {
    epoch().elapsed().as_micros().min(u64::MAX as u128) as u64
}

struct Ring {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

fn ring() -> &'static Mutex<Ring> {
    static RING: OnceLock<Mutex<Ring>> = OnceLock::new();
    RING.get_or_init(|| {
        Mutex::new(Ring {
            events: VecDeque::new(),
            capacity: DEFAULT_RING_CAPACITY,
            dropped: 0,
        })
    })
}

struct Local {
    tid: u64,
    depth: u32,
    buf: Vec<TraceEvent>,
}

thread_local! {
    static LOCAL: RefCell<Local> = RefCell::new(Local {
        tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
        depth: 0,
        buf: Vec::new(),
    });
}

/// Turns tracing on or off globally. Off by default.
pub fn enable(on: bool) {
    // Pin the epoch before the first event so timestamps stay small.
    if on {
        epoch();
    }
    ENABLED.store(on, Ordering::SeqCst);
}

/// Whether tracing is currently enabled.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Sets the bounded ring's capacity. When full, the oldest events are
/// dropped (counted by [`dropped`]).
pub fn set_ring_capacity(capacity: usize) {
    let mut ring = ring().lock().expect("trace ring poisoned");
    ring.capacity = capacity.max(1);
    while ring.events.len() > ring.capacity {
        ring.events.pop_front();
        ring.dropped += 1;
    }
}

/// Number of events dropped so far because the ring was full.
pub fn dropped() -> u64 {
    ring().lock().expect("trace ring poisoned").dropped
}

fn flush_into_ring(buf: &mut Vec<TraceEvent>) {
    if buf.is_empty() {
        return;
    }
    let mut ring = ring().lock().expect("trace ring poisoned");
    for event in buf.drain(..) {
        if ring.events.len() >= ring.capacity {
            ring.events.pop_front();
            ring.dropped += 1;
        }
        ring.events.push_back(event);
    }
}

/// Flushes the calling thread's local buffer into the global ring.
///
/// Called automatically when a top-level span closes; call it manually
/// before a worker thread goes idle if you record instants outside spans.
pub fn flush_local() {
    LOCAL.with(|local| {
        let mut local = local.borrow_mut();
        let Local { buf, .. } = &mut *local;
        flush_into_ring(buf);
    });
}

/// Removes and returns every event currently in the global ring, flushing
/// the calling thread's local buffer first. Events from other threads that
/// are still inside open spans are not included — join those threads (or
/// drop their guards) before draining.
pub fn drain() -> Vec<TraceEvent> {
    flush_local();
    let mut ring = ring().lock().expect("trace ring poisoned");
    ring.events.drain(..).collect()
}

/// RAII guard returned by [`span`]; records a complete event when dropped.
#[must_use = "a span measures the scope it is alive for"]
pub struct SpanGuard {
    name: Option<String>,
    cat: &'static str,
    start_us: u64,
    depth: u32,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(name) = self.name.take() else {
            return;
        };
        let end = now_us();
        LOCAL.with(|local| {
            let mut local = local.borrow_mut();
            local.depth = local.depth.saturating_sub(1);
            let event = TraceEvent {
                name,
                cat: self.cat,
                tid: local.tid,
                ts_us: self.start_us,
                dur_us: end.saturating_sub(self.start_us),
                depth: self.depth,
                kind: EventKind::Span,
            };
            local.buf.push(event);
            if local.depth == 0 || local.buf.len() >= LOCAL_BUF_LIMIT {
                let Local { buf, .. } = &mut *local;
                flush_into_ring(buf);
            }
        });
    }
}

/// Opens a span; the returned guard records a complete event on drop.
/// A cheap no-op when tracing is disabled.
pub fn span(cat: &'static str, name: impl Into<String>) -> SpanGuard {
    if !enabled() {
        return SpanGuard {
            name: None,
            cat,
            start_us: 0,
            depth: 0,
        };
    }
    let depth = LOCAL.with(|local| {
        let mut local = local.borrow_mut();
        let depth = local.depth;
        local.depth += 1;
        depth
    });
    SpanGuard {
        name: Some(name.into()),
        cat,
        start_us: now_us(),
        depth,
    }
}

/// Records a zero-duration marker event. A no-op when tracing is disabled.
pub fn instant(cat: &'static str, name: impl Into<String>) {
    if !enabled() {
        return;
    }
    let ts = now_us();
    LOCAL.with(|local| {
        let mut local = local.borrow_mut();
        let depth = local.depth;
        let tid = local.tid;
        local.buf.push(TraceEvent {
            name: name.into(),
            cat,
            tid,
            ts_us: ts,
            dur_us: 0,
            depth,
            kind: EventKind::Instant,
        });
        if local.depth == 0 || local.buf.len() >= LOCAL_BUF_LIMIT {
            let Local { buf, .. } = &mut *local;
            flush_into_ring(buf);
        }
    });
}

fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Serializes events into chrome://tracing's JSON object format.
///
/// Load the output in `chrome://tracing` or <https://ui.perfetto.dev>:
/// spans become `"ph":"X"` complete events laid out per thread, instants
/// become `"ph":"i"` markers.
pub fn chrome_trace(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 64);
    out.push_str("{\"traceEvents\":[");
    for (i, event) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":\"");
        escape_json(&event.name, &mut out);
        out.push_str("\",\"cat\":\"");
        escape_json(event.cat, &mut out);
        match event.kind {
            EventKind::Span => {
                out.push_str(&format!(
                    "\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{}}}",
                    event.ts_us, event.dur_us, event.tid
                ));
            }
            EventKind::Instant => {
                out.push_str(&format!(
                    "\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":1,\"tid\":{}}}",
                    event.ts_us, event.tid
                ));
            }
        }
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The tracer is process-global; serialize tests that toggle it.
    fn test_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_tracing_records_nothing() {
        let _guard = test_lock();
        enable(false);
        {
            let _span = span("test", "disabled-span");
            instant("test", "disabled-instant");
        }
        let events = drain();
        assert!(events.iter().all(
            |e| !e.name.starts_with("disabled-span") && !e.name.starts_with("disabled-instant")
        ));
    }

    #[test]
    fn spans_nest_and_drain_in_drop_order() {
        let _guard = test_lock();
        enable(true);
        {
            let _outer = span("test", "nest-outer");
            {
                let _inner = span("test", "nest-inner");
            }
        }
        enable(false);
        let events: Vec<TraceEvent> = drain()
            .into_iter()
            .filter(|e| e.name.starts_with("nest-"))
            .collect();
        assert_eq!(events.len(), 2);
        let inner = events.iter().find(|e| e.name == "nest-inner").unwrap();
        let outer = events.iter().find(|e| e.name == "nest-outer").unwrap();
        assert_eq!(outer.depth, 0);
        assert_eq!(inner.depth, 1);
        assert!(inner.ts_us >= outer.ts_us);
        assert!(inner.ts_us + inner.dur_us <= outer.ts_us + outer.dur_us);
        assert_eq!(inner.tid, outer.tid);
    }

    #[test]
    fn chrome_trace_escapes_and_wraps() {
        let events = vec![TraceEvent {
            name: "weird \"name\"\n".to_string(),
            cat: "test",
            tid: 7,
            ts_us: 10,
            dur_us: 5,
            depth: 0,
            kind: EventKind::Span,
        }];
        let json = chrome_trace(&events);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("weird \\\"name\\\"\\n"));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.ends_with("\"displayTimeUnit\":\"ms\"}"));
    }

    #[test]
    fn ring_capacity_bounds_and_counts_drops() {
        let _guard = test_lock();
        enable(true);
        set_ring_capacity(4);
        for i in 0..10 {
            instant("test", format!("ring-{i}"));
        }
        flush_local();
        let before_drops = dropped();
        assert!(before_drops > 0);
        let events = drain();
        assert!(events.len() <= 4);
        set_ring_capacity(DEFAULT_RING_CAPACITY);
        enable(false);
    }
}
