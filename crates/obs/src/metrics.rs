//! Unified metrics registry: named counters, gauges, and histograms with
//! point-in-time snapshots and Prometheus text exposition.
//!
//! Instruments are keyed by `(name, sorted label pairs)` and handed out as
//! `Arc`s, so hot paths resolve them once and then touch only atomics:
//!
//! ```
//! use mixmatch_obs::Registry;
//! let reg = Registry::new();
//! let hits = reg.counter("cache_hits_total", &[("tier", "l1")]);
//! hits.inc();
//! let snap = reg.snapshot();
//! assert_eq!(snap.counter("cache_hits_total", &[("tier", "l1")]), Some(1));
//! assert!(reg.render_prometheus().contains("cache_hits_total{tier=\"l1\"} 1"));
//! ```

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Duration;

use crate::histogram::{LatencyHistogram, BUCKETS};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge that can go up and down.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the gauge to an absolute value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Key {
    name: String,
    labels: Vec<(String, String)>,
}

impl Key {
    fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        Key {
            name: name.to_string(),
            labels,
        }
    }
}

#[derive(Debug, Clone)]
enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<LatencyHistogram>),
}

/// The value of one metric series at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub enum SampleValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(i64),
    /// Histogram bucket counts plus sum (boxed: the bucket array dwarfs
    /// the scalar variants).
    Histogram(Box<HistogramSnapshot>),
}

/// Point-in-time copy of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Raw (non-cumulative) per-bucket counts.
    pub buckets: [u64; BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of observations in microseconds.
    pub sum_us: u64,
}

impl HistogramSnapshot {
    fn from(h: &LatencyHistogram) -> Self {
        let buckets = h.bucket_counts();
        HistogramSnapshot {
            count: buckets.iter().sum(),
            sum_us: h.sum_micros(),
            buckets,
        }
    }

    /// Quantile `q` (0–100) as a bucket upper bound, like
    /// [`LatencyHistogram::percentile`]; [`Duration::ZERO`] when empty.
    pub fn percentile(&self, q: f64) -> Duration {
        crate::histogram::percentile_of(&self.buckets, q)
    }
}

/// One metric series in a [`Snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric name.
    pub name: String,
    /// Sorted label pairs.
    pub labels: Vec<(String, String)>,
    /// The value at snapshot time.
    pub value: SampleValue,
}

/// A point-in-time copy of every registered metric.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// All series, ordered by `(name, labels)`.
    pub samples: Vec<Sample>,
}

impl Snapshot {
    fn find(&self, name: &str, labels: &[(&str, &str)]) -> Option<&Sample> {
        let key = Key::new(name, labels);
        self.samples
            .iter()
            .find(|s| s.name == key.name && s.labels == key.labels)
    }

    /// Looks up a counter series' value.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        match self.find(name, labels)?.value {
            SampleValue::Counter(v) => Some(v),
            _ => None,
        }
    }

    /// Looks up a gauge series' value.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<i64> {
        match self.find(name, labels)?.value {
            SampleValue::Gauge(v) => Some(v),
            _ => None,
        }
    }

    /// Looks up a histogram series.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&HistogramSnapshot> {
        match &self.find(name, labels)?.value {
            SampleValue::Histogram(h) => Some(h),
            _ => None,
        }
    }

    /// Difference `self - earlier` per series. Counters and histogram
    /// buckets subtract saturating (a restarted counter clamps to 0);
    /// gauges keep their current value. Series absent from `earlier`
    /// pass through unchanged.
    pub fn delta(&self, earlier: &Snapshot) -> Snapshot {
        let samples = self
            .samples
            .iter()
            .map(|s| {
                let labels: Vec<(&str, &str)> = s
                    .labels
                    .iter()
                    .map(|(k, v)| (k.as_str(), v.as_str()))
                    .collect();
                let value = match (&s.value, earlier.find(&s.name, &labels).map(|e| &e.value)) {
                    (SampleValue::Counter(now), Some(SampleValue::Counter(then))) => {
                        SampleValue::Counter(now.saturating_sub(*then))
                    }
                    (SampleValue::Histogram(now), Some(SampleValue::Histogram(then))) => {
                        let mut buckets = [0u64; BUCKETS];
                        for (i, slot) in buckets.iter_mut().enumerate() {
                            *slot = now.buckets[i].saturating_sub(then.buckets[i]);
                        }
                        SampleValue::Histogram(Box::new(HistogramSnapshot {
                            count: buckets.iter().sum(),
                            sum_us: now.sum_us.saturating_sub(then.sum_us),
                            buckets,
                        }))
                    }
                    (value, _) => value.clone(),
                };
                Sample {
                    name: s.name.clone(),
                    labels: s.labels.clone(),
                    value,
                }
            })
            .collect();
        Snapshot { samples }
    }
}

/// A registry of named metric instruments.
///
/// `Registry::global()` is the process-wide registry every subsystem
/// reports into and the `METRICS` wire verb renders; `Registry::new()`
/// builds an isolated one for tests.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: RwLock<BTreeMap<Key, Instrument>>,
}

impl Registry {
    /// Creates an empty, isolated registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The process-wide registry.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    fn get_or_insert(&self, key: Key, make: impl FnOnce() -> Instrument) -> Instrument {
        if let Some(found) = self.metrics.read().expect("registry poisoned").get(&key) {
            return found.clone();
        }
        let mut metrics = self.metrics.write().expect("registry poisoned");
        metrics.entry(key).or_insert_with(make).clone()
    }

    /// Gets or creates the counter named `name` with the given labels.
    ///
    /// If the series exists under a different instrument kind, a detached
    /// counter is returned so the caller never panics; the registered
    /// series keeps its original kind.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let key = Key::new(name, labels);
        match self.get_or_insert(key, || Instrument::Counter(Arc::new(Counter::new()))) {
            Instrument::Counter(c) => c,
            _ => Arc::new(Counter::new()),
        }
    }

    /// Gets or creates the gauge named `name` with the given labels.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let key = Key::new(name, labels);
        match self.get_or_insert(key, || Instrument::Gauge(Arc::new(Gauge::new()))) {
            Instrument::Gauge(g) => g,
            _ => Arc::new(Gauge::new()),
        }
    }

    /// Gets or creates the histogram named `name` with the given labels.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<LatencyHistogram> {
        let key = Key::new(name, labels);
        match self.get_or_insert(key, || {
            Instrument::Histogram(Arc::new(LatencyHistogram::new()))
        }) {
            Instrument::Histogram(h) => h,
            _ => Arc::new(LatencyHistogram::new()),
        }
    }

    /// Captures a point-in-time [`Snapshot`] of every registered series.
    pub fn snapshot(&self) -> Snapshot {
        let metrics = self.metrics.read().expect("registry poisoned");
        let samples = metrics
            .iter()
            .map(|(key, instrument)| Sample {
                name: key.name.clone(),
                labels: key.labels.clone(),
                value: match instrument {
                    Instrument::Counter(c) => SampleValue::Counter(c.get()),
                    Instrument::Gauge(g) => SampleValue::Gauge(g.get()),
                    Instrument::Histogram(h) => {
                        SampleValue::Histogram(Box::new(HistogramSnapshot::from(h)))
                    }
                },
            })
            .collect();
        Snapshot { samples }
    }

    /// Renders every registered series in the Prometheus text exposition
    /// format. Histogram buckets are cumulative with `le` bounds in
    /// seconds; `_sum` is in seconds as well.
    pub fn render_prometheus(&self) -> String {
        let snapshot = self.snapshot();
        let mut out = String::new();
        let mut last_name: Option<(&str, &str)> = None;
        for sample in &snapshot.samples {
            let kind = match sample.value {
                SampleValue::Counter(_) => "counter",
                SampleValue::Gauge(_) => "gauge",
                SampleValue::Histogram(_) => "histogram",
            };
            if last_name != Some((sample.name.as_str(), kind)) {
                out.push_str(&format!("# TYPE {} {}\n", sample.name, kind));
                last_name = Some((sample.name.as_str(), kind));
            }
            match &sample.value {
                SampleValue::Counter(v) => {
                    out.push_str(&format!(
                        "{}{} {}\n",
                        sample.name,
                        render_labels(&sample.labels, None),
                        v
                    ));
                }
                SampleValue::Gauge(v) => {
                    out.push_str(&format!(
                        "{}{} {}\n",
                        sample.name,
                        render_labels(&sample.labels, None),
                        v
                    ));
                }
                SampleValue::Histogram(h) => {
                    let mut cumulative = 0u64;
                    for (i, count) in h.buckets.iter().enumerate() {
                        cumulative += count;
                        let le_seconds = LatencyHistogram::bucket_upper_bound_us(i) as f64 / 1e6;
                        let le = format!("{le_seconds}");
                        out.push_str(&format!(
                            "{}_bucket{} {}\n",
                            sample.name,
                            render_labels(&sample.labels, Some(&le)),
                            cumulative
                        ));
                    }
                    out.push_str(&format!(
                        "{}_bucket{} {}\n",
                        sample.name,
                        render_labels(&sample.labels, Some("+Inf")),
                        h.count
                    ));
                    out.push_str(&format!(
                        "{}_sum{} {}\n",
                        sample.name,
                        render_labels(&sample.labels, None),
                        h.sum_us as f64 / 1e6
                    ));
                    out.push_str(&format!(
                        "{}_count{} {}\n",
                        sample.name,
                        render_labels(&sample.labels, None),
                        h.count
                    ));
                }
            }
        }
        out
    }
}

fn render_labels(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("{}=\"{}\"", k, escape_label(v)));
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        out.push_str(&format!("le=\"{le}\""));
    }
    out.push('}');
    out
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_register_once_and_accumulate() {
        let reg = Registry::new();
        let a = reg.counter("hits_total", &[("tier", "l1")]);
        let b = reg.counter("hits_total", &[("tier", "l1")]);
        a.add(3);
        b.inc();
        assert_eq!(a.get(), 4);
        let g = reg.gauge("depth", &[]);
        g.set(5);
        g.add(-2);
        assert_eq!(g.get(), 3);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("hits_total", &[("tier", "l1")]), Some(4));
        assert_eq!(snap.gauge("depth", &[]), Some(3));
    }

    #[test]
    fn label_order_does_not_matter() {
        let reg = Registry::new();
        reg.counter("m", &[("a", "1"), ("b", "2")]).inc();
        reg.counter("m", &[("b", "2"), ("a", "1")]).inc();
        assert_eq!(
            reg.snapshot().counter("m", &[("b", "2"), ("a", "1")]),
            Some(2)
        );
    }

    #[test]
    fn kind_mismatch_returns_detached_instrument() {
        let reg = Registry::new();
        reg.counter("mixed", &[]).inc();
        let gauge = reg.gauge("mixed", &[]);
        gauge.set(99);
        // Registered series stays a counter with its original value.
        assert_eq!(reg.snapshot().counter("mixed", &[]), Some(1));
        assert_eq!(reg.snapshot().gauge("mixed", &[]), None);
    }

    #[test]
    fn snapshot_delta_subtracts_counters_and_histograms() {
        let reg = Registry::new();
        let c = reg.counter("work_total", &[]);
        let h = reg.histogram("lat", &[]);
        c.add(5);
        h.record(Duration::from_micros(100));
        let before = reg.snapshot();
        c.add(7);
        h.record(Duration::from_micros(100));
        h.record(Duration::from_millis(2));
        let after = reg.snapshot();
        let delta = after.delta(&before);
        assert_eq!(delta.counter("work_total", &[]), Some(7));
        let hd = delta.histogram("lat", &[]).unwrap();
        assert_eq!(hd.count, 2);
    }

    #[test]
    fn prometheus_rendering_is_well_formed() {
        let reg = Registry::new();
        reg.counter("reqs_total", &[("model", "mlp")]).add(2);
        reg.gauge("queue_depth", &[]).set(4);
        reg.histogram("lat_seconds", &[("stage", "execute")])
            .record(Duration::from_micros(100));
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE reqs_total counter\n"));
        assert!(text.contains("reqs_total{model=\"mlp\"} 2\n"));
        assert!(text.contains("# TYPE queue_depth gauge\n"));
        assert!(text.contains("queue_depth 4\n"));
        assert!(text.contains("# TYPE lat_seconds histogram\n"));
        assert!(text.contains("lat_seconds_bucket{stage=\"execute\",le=\"+Inf\"} 1\n"));
        assert!(text.contains("lat_seconds_count{stage=\"execute\"} 1\n"));
        // One observation of 100 µs lands in the [64, 128) µs bucket, so
        // every cumulative bucket at or above 128 µs reports 1.
        assert!(text.contains("lat_seconds_bucket{stage=\"execute\",le=\"0.000128\"} 1\n"));
    }
}
