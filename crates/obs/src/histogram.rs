//! Lock-free latency histogram with power-of-two microsecond buckets.
//!
//! Generalized out of `serve::metrics` so the engine, the pool, and the
//! serving layer all share one latency type. Recording is a single relaxed
//! atomic increment; snapshots are eventually consistent, which is fine for
//! monitoring.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of buckets. Bucket `i` counts latencies in `[2^(i-1), 2^i)`
/// microseconds (bucket 0 is everything under 1 µs), so the top bucket
/// covers ~67 seconds and beyond.
pub const BUCKETS: usize = 27;

/// A fixed-bucket latency histogram safe for concurrent recording.
///
/// Buckets grow by powers of two in microseconds, giving roughly
/// constant relative error across six orders of magnitude while keeping
/// the whole structure a flat array of atomics.
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    counts: [AtomicU64; BUCKETS],
    sum_us: AtomicU64,
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    pub fn record(&self, latency: Duration) {
        let us = latency.as_micros().min(u64::MAX as u128) as u64;
        self.record_micros(us);
    }

    /// Records one observation given directly in microseconds.
    pub fn record_micros(&self, us: u64) {
        let bucket = (64 - us.leading_zeros() as usize).min(BUCKETS - 1);
        self.counts[bucket].fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Total number of recorded observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all recorded observations.
    pub fn sum(&self) -> Duration {
        Duration::from_micros(self.sum_us.load(Ordering::Relaxed))
    }

    /// Sum of all recorded observations, in microseconds.
    pub fn sum_micros(&self) -> u64 {
        self.sum_us.load(Ordering::Relaxed)
    }

    /// Point-in-time copy of the raw bucket counters.
    pub fn bucket_counts(&self) -> [u64; BUCKETS] {
        let mut out = [0u64; BUCKETS];
        for (slot, count) in out.iter_mut().zip(&self.counts) {
            *slot = count.load(Ordering::Relaxed);
        }
        out
    }

    /// Upper bound of bucket `i` in microseconds (`2^i`).
    pub fn bucket_upper_bound_us(i: usize) -> u64 {
        1u64 << i.min(BUCKETS - 1)
    }

    /// Returns the latency at quantile `q` (0–100) as the upper bound of
    /// the bucket containing that rank, or [`Duration::ZERO`] if nothing
    /// was recorded.
    pub fn percentile(&self, q: f64) -> Duration {
        percentile_of(&self.bucket_counts(), q)
    }
}

/// Shared percentile-over-buckets walk used by the live histogram and
/// by [`crate::metrics::HistogramSnapshot`].
pub(crate) fn percentile_of(counts: &[u64; BUCKETS], q: f64) -> Duration {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return Duration::ZERO;
    }
    let rank = ((total as f64) * (q / 100.0)).ceil().max(1.0) as u64;
    let mut seen = 0u64;
    for (i, count) in counts.iter().enumerate() {
        seen += count;
        if seen >= rank {
            return Duration::from_micros(LatencyHistogram::bucket_upper_bound_us(i));
        }
    }
    Duration::from_micros(LatencyHistogram::bucket_upper_bound_us(BUCKETS - 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_resolve_to_bucket_upper_bounds() {
        let h = LatencyHistogram::new();
        for _ in 0..90 {
            h.record(Duration::from_micros(100)); // bucket [64, 128)
        }
        for _ in 0..10 {
            h.record(Duration::from_millis(3)); // bucket [2048, 4096) µs
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.percentile(50.0), Duration::from_micros(128));
        assert_eq!(h.percentile(95.0), Duration::from_micros(4096));
    }

    #[test]
    fn extreme_latencies_clamp_to_the_edge_buckets() {
        let h = LatencyHistogram::new();
        h.record(Duration::ZERO);
        assert_eq!(h.percentile(50.0), Duration::from_micros(1));

        let h = LatencyHistogram::new();
        h.record(Duration::from_secs(1_000_000));
        assert_eq!(
            h.percentile(50.0),
            Duration::from_micros(1u64 << (BUCKETS - 1))
        );
    }

    #[test]
    fn empty_histogram_has_zero_percentiles() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(99.0), Duration::ZERO);
    }

    #[test]
    fn sum_accumulates_microseconds() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_micros(10));
        h.record(Duration::from_micros(30));
        assert_eq!(h.sum(), Duration::from_micros(40));
        assert_eq!(h.sum_micros(), 40);
    }
}
