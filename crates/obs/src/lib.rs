//! Observability layer for the Mix-and-Match reproduction: tracing spans,
//! a unified metrics registry, and Prometheus text exposition — with zero
//! external dependencies.
//!
//! Three pieces, used together or separately:
//!
//! - [`trace`] — thread-safe span/event recorder with per-thread buffers,
//!   a bounded global ring, and a chrome://tracing JSON exporter.
//! - [`Registry`] — named counters/gauges/histograms keyed by
//!   `(name, labels)`, snapshottable and renderable as Prometheus text.
//! - [`LatencyHistogram`] — the shared power-of-two-µs latency histogram
//!   (generalized out of `serve::metrics`).
//!
//! Everything is safe to call from hot paths: instruments are plain
//! relaxed atomics once resolved, and tracing is a single atomic check
//! when disabled.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod histogram;
pub mod metrics;
pub mod trace;

pub use histogram::{LatencyHistogram, BUCKETS};
pub use metrics::{Counter, Gauge, HistogramSnapshot, Registry, Sample, SampleValue, Snapshot};
pub use trace::{chrome_trace, span, EventKind, SpanGuard, TraceEvent};
