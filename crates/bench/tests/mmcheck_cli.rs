//! End-to-end contract of the `mmcheck` lint binary: exit 0 with a clean
//! summary on verifiable targets, exit 1 with a structured rule-level
//! report on corrupted artifacts, exit 2 on usage errors.

use mixmatch_nn::layers::Linear;
use mixmatch_nn::module::Sequential;
use mixmatch_quant::export::{export_compiled, import_compiled};
use mixmatch_quant::graph::{ExecutionPlan, StepOp};
use mixmatch_quant::msq::MsqPolicy;
use mixmatch_quant::pipeline::{CompiledModel, QuantPipeline};
use mixmatch_tensor::TensorRng;
use std::process::Command;

fn mmcheck(args: &[&str]) -> (i32, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_mmcheck"))
        .args(args)
        .output()
        .expect("run mmcheck");
    (
        out.status.code().expect("exit code"),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

/// A clean single-layer MLP artifact and a byte-valid tampered variant
/// whose GEMM step lies about its output width.
fn artifacts() -> (Vec<u8>, Vec<u8>) {
    let mut rng = TensorRng::seed_from(47);
    let mut model = Sequential::new();
    model.push(Linear::with_name("fc", 8, 4, false, &mut rng));
    let compiled = QuantPipeline::from_policy(MsqPolicy::msq_half())
        .with_input_shape(&[8])
        .quantize(&mut model)
        .expect("quantize");
    let clean = export_compiled(&compiled).expect("export clean");

    let plan = compiled.plan().expect("plan");
    let mut steps = plan.steps().to_vec();
    let mut sizes = vec![0usize; plan.buffer_count()];
    sizes[plan.input_buffer()] = plan.input_dims().iter().product();
    for s in &mut steps {
        assert!(
            matches!(s.op, StepOp::Gemm { .. }),
            "1-layer MLP is one GEMM"
        );
        s.dims = vec![s.dims[0] + 1];
        sizes[s.dst] = sizes[s.dst].max(s.dims.iter().product());
    }
    let output_dims = steps.last().expect("step").dims.clone();
    let lying = ExecutionPlan::from_parts(
        plan.input_dims().to_vec(),
        output_dims,
        steps,
        sizes,
        plan.input_buffer(),
        plan.output_buffer(),
    )
    .expect("structurally valid lie");
    let tampered = export_compiled(&CompiledModel::from_parts(
        compiled.into_model(),
        Some(lying),
    ))
    .expect("export tampered");
    assert!(import_compiled(&tampered).is_err(), "import must refuse it");
    (clean, tampered)
}

#[test]
fn lints_clean_and_corrupted_artifacts_with_matching_exit_codes() {
    let dir = std::env::temp_dir().join(format!("mmcheck-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let clean_path = dir.join("clean.mmcm");
    let tampered_path = dir.join("tampered.mmcm");
    let truncated_path = dir.join("truncated.mmcm");
    let (clean, tampered) = artifacts();
    std::fs::write(&clean_path, &clean).expect("write clean");
    std::fs::write(&tampered_path, &tampered).expect("write tampered");
    std::fs::write(&truncated_path, &clean[..clean.len() / 2]).expect("write truncated");

    // Clean artifact: exit 0, per-target ok line.
    let (code, stdout, _) = mmcheck(&[clean_path.to_str().unwrap()]);
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("0 diagnostics"), "{stdout}");

    // Byte-valid but unverifiable: exit 1 with the rule id in the report.
    let (code, stdout, _) = mmcheck(&[tampered_path.to_str().unwrap()]);
    assert_eq!(code, 1, "{stdout}");
    assert!(stdout.contains("geom-gemm"), "{stdout}");
    assert!(stdout.contains("fails verification"), "{stdout}");

    // Byte-level corruption: exit 1 with a parse rejection.
    let (code, stdout, _) = mmcheck(&[truncated_path.to_str().unwrap()]);
    assert_eq!(code, 1, "{stdout}");
    assert!(stdout.contains("artifact rejected"), "{stdout}");

    // A mixed run fails overall but still lints every target.
    let (code, stdout, _) = mmcheck(&[
        clean_path.to_str().unwrap(),
        tampered_path.to_str().unwrap(),
    ]);
    assert_eq!(code, 1, "{stdout}");
    assert!(stdout.contains("1/2 targets verify clean"), "{stdout}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fresh_models_lint_clean_and_usage_errors_exit_two() {
    let (code, stdout, _) = mmcheck(&["--model", "mlp"]);
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("model:mlp: ok"), "{stdout}");

    let (code, _, stderr) = mmcheck(&[]);
    assert_eq!(code, 2, "{stderr}");
    assert!(stderr.contains("usage:"), "{stderr}");

    // Flag-only invocations still have nothing to lint.
    let (code, _, stderr) = mmcheck(&["--dump"]);
    assert_eq!(code, 2, "{stderr}");

    let (code, _, stderr) = mmcheck(&["--model", "vgg"]);
    assert_eq!(code, 2, "{stderr}");

    let (code, _, stderr) = mmcheck(&["--bogus"]);
    assert_eq!(code, 2, "{stderr}");
}

/// `--no-opt` lints the raw lowering (3 MLP steps, separate activation),
/// the default lints the optimizer's output (2 steps, fused epilogue),
/// and `--dump` pretty-prints both with buffer table and high-water mark.
#[test]
fn dump_and_no_opt_expose_raw_and_optimized_plans() {
    let (code, raw, _) = mmcheck(&["--dump", "--no-opt", "--model", "mlp"]);
    assert_eq!(code, 0, "{raw}");
    assert!(raw.contains("3 steps"), "{raw}");
    assert!(raw.contains("act(relu)"), "{raw}");
    assert!(raw.contains("high water 40 elems"), "{raw}");

    let (code, opt, _) = mmcheck(&["--dump", "--model", "mlp"]);
    assert_eq!(code, 0, "{opt}");
    assert!(opt.contains("2 steps"), "{opt}");
    assert!(opt.contains("fused-gemm(layer 0+relu)"), "{opt}");
    assert!(opt.contains("high water 32 elems"), "{opt}");
    assert!(!opt.contains("act(relu)"), "{opt}");
}
