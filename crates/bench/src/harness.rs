//! Shared experiment drivers for the per-table binaries.

use mixmatch_data::{BatchIter, ImageDataset, SynthImageConfig};
use mixmatch_nn::models::{MobileNetConfig, MobileNetV2, ResNet, ResNetConfig};
use mixmatch_nn::module::Layer;
use mixmatch_nn::quantize::QuantizableModel;
use mixmatch_quant::msq::MsqPolicy;
use mixmatch_quant::pipeline::QuantPipeline;
use mixmatch_quant::qat::{evaluate_classifier, train_classifier, EvalResult, QatConfig};
use mixmatch_quant::schemes::Scheme;
use mixmatch_tensor::TensorRng;

/// Experiment sizing selected from the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunMode {
    /// Shrink datasets and epochs for a quick smoke run.
    pub fast: bool,
}

impl RunMode {
    /// Parses `--fast` from `std::env::args`.
    pub fn from_args() -> Self {
        RunMode {
            fast: std::env::args().any(|a| a == "--fast"),
        }
    }

    /// Scales an epoch count down in fast mode.
    pub fn epochs(&self, full: usize) -> usize {
        if self.fast {
            (full / 4).max(2)
        } else {
            full
        }
    }

    /// Scales a dataset configuration down in fast mode.
    pub fn shrink_dataset(&self, mut cfg: SynthImageConfig) -> SynthImageConfig {
        if self.fast {
            cfg.train_per_class = (cfg.train_per_class / 4).max(8);
            cfg.test_per_class = (cfg.test_per_class / 2).max(4);
        }
        cfg
    }
}

/// The two CNN families of Tables II–IV.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CnnKind {
    /// Scaled-down ResNet (basic blocks).
    ResNet,
    /// Scaled-down MobileNet-v2 (inverted residuals).
    MobileNet,
}

/// A labelled quantization configuration for result rows.
#[derive(Debug, Clone, Copy)]
pub struct SchemeRow {
    /// Display label (paper row name).
    pub label: &'static str,
    /// Policy; `None` = float baseline.
    pub policy: Option<MsqPolicy>,
}

/// The six rows of Table II, in paper order.
pub fn table2_rows() -> Vec<SchemeRow> {
    vec![
        SchemeRow {
            label: "Baseline (FP)",
            policy: None,
        },
        SchemeRow {
            label: "P2",
            policy: Some(MsqPolicy::single(Scheme::Pow2, 4)),
        },
        SchemeRow {
            label: "Fixed",
            policy: Some(MsqPolicy::single(Scheme::Fixed, 4)),
        },
        SchemeRow {
            label: "SP2",
            policy: Some(MsqPolicy::single(Scheme::Sp2, 4)),
        },
        SchemeRow {
            label: "MSQ (half/half)",
            policy: Some(MsqPolicy::msq_half()),
        },
        SchemeRow {
            label: "MSQ (optimal)",
            policy: Some(MsqPolicy::msq_optimal()),
        },
    ]
}

/// [`run_cnn_experiment`] averaged over several seeds, with each scheme
/// seeing the same seed set (paired comparison — quantization-training noise
/// on small models is larger than the scheme effects being measured).
pub fn run_cnn_experiment_seeds(
    kind: CnnKind,
    dataset: &ImageDataset,
    policy: Option<MsqPolicy>,
    epochs: usize,
    seeds: &[u64],
) -> EvalResult {
    assert!(!seeds.is_empty(), "need at least one seed");
    let mut top1 = 0.0f32;
    let mut top5 = 0.0f32;
    for &s in seeds {
        let r = run_cnn_experiment(kind, dataset, policy, epochs, s);
        top1 += r.top1;
        top5 += r.top5;
    }
    EvalResult {
        top1: top1 / seeds.len() as f32,
        top5: top5 / seeds.len() as f32,
    }
}

/// Trains one CNN on one dataset under one (optional) quantization policy
/// and reports test accuracy. Deterministic in `seed`.
pub fn run_cnn_experiment(
    kind: CnnKind,
    dataset: &ImageDataset,
    policy: Option<MsqPolicy>,
    epochs: usize,
    seed: u64,
) -> EvalResult {
    let mut rng = TensorRng::seed_from(seed);
    let classes = dataset.config().classes;
    // Activation quantization at 4 bits whenever weights are quantized
    // (the paper's W/A = 4/4 regime).
    let act_bits = policy.map(|_| 4u32);
    let cfg = match policy {
        None => QatConfig::float_baseline(epochs, 0.05),
        Some(p) => QatConfig::quantized(p, epochs, 0.05),
    };
    let batch_size = 32usize;
    let mut data_rng = rng.fork();
    let train_len = dataset.train_len();
    let make_batches = |data_rng: &mut TensorRng| {
        BatchIter::shuffled(train_len, batch_size, false, data_rng)
            .map(|idx| dataset.train_batch(&idx))
            .collect::<Vec<_>>()
    };
    let (x_test, y_test) = dataset.test_all();
    // Quantized rows go through the QuantPipeline (policy → ADMM → hard
    // projection); the float baseline uses the raw QAT driver.
    fn drive<M: Layer + QuantizableModel>(
        model: &mut M,
        policy: Option<MsqPolicy>,
        cfg: &QatConfig,
        mut make_batches: impl FnMut() -> Vec<(mixmatch_tensor::Tensor, Vec<usize>)>,
    ) {
        match policy {
            Some(p) => {
                let _ = QuantPipeline::from_policy(p)
                    .with_qat(cfg.clone())
                    .train_and_quantize(model, |_| make_batches())
                    .expect("pipeline");
            }
            None => {
                let _ = train_classifier(model, |_| make_batches(), cfg);
            }
        }
    }
    match kind {
        CnnKind::ResNet => {
            let mut mc = ResNetConfig::mini(classes);
            if let Some(bits) = act_bits {
                mc = mc.with_act_bits(bits);
            }
            let mut model = ResNet::new(mc, &mut rng);
            drive(&mut model, policy, &cfg, || make_batches(&mut data_rng));
            evaluate_classifier(&mut model, &x_test, &y_test)
        }
        CnnKind::MobileNet => {
            let mut mc = MobileNetConfig::mini(classes);
            if let Some(bits) = act_bits {
                mc = mc.with_act_bits(bits);
            }
            let mut model = MobileNetV2::new(mc, &mut rng);
            drive(&mut model, policy, &cfg, || make_batches(&mut data_rng));
            evaluate_classifier(&mut model, &x_test, &y_test)
        }
    }
}

/// [`run_cnn_ste_baseline`] averaged over paired seeds.
pub fn run_cnn_ste_baseline_seeds(
    kind: CnnKind,
    dataset: &ImageDataset,
    method: mixmatch_quant::baselines::BaselineMethod,
    epochs: usize,
    seeds: &[u64],
) -> EvalResult {
    assert!(!seeds.is_empty(), "need at least one seed");
    let mut top1 = 0.0f32;
    let mut top5 = 0.0f32;
    for &s in seeds {
        let r = run_cnn_ste_baseline(kind, dataset, method, epochs, s);
        top1 += r.top1;
        top5 += r.top5;
    }
    EvalResult {
        top1: top1 / seeds.len() as f32,
        top5: top5 / seeds.len() as f32,
    }
}

/// Trains a model with the DoReFa/PACT straight-through baseline
/// (Tables III–IV comparators) and reports test accuracy.
pub fn run_cnn_ste_baseline(
    kind: CnnKind,
    dataset: &ImageDataset,
    method: mixmatch_quant::baselines::BaselineMethod,
    epochs: usize,
    seed: u64,
) -> EvalResult {
    use mixmatch_nn::loss::cross_entropy;
    use mixmatch_nn::optim::{LrSchedule, Sgd};
    use mixmatch_quant::baselines::SteWeightQuantizer;

    let mut rng = TensorRng::seed_from(seed);
    let classes = dataset.config().classes;
    let mut data_rng = rng.fork();
    let (x_test, y_test) = dataset.test_all();

    // PACT = DoReFa weights + learnable activation clip; realised here with
    // the same model activation quantization (EMA-calibrated FakeQuant),
    // which is PACT's behaviour once the clip has converged.
    let run = |model: &mut dyn Layer, rng_data: &mut TensorRng| -> EvalResult {
        let mut q = SteWeightQuantizer::attach(&model.params(), method, 4);
        let mut opt = Sgd::with_config(
            0.05,
            0.9,
            1e-4,
            LrSchedule::Cosine {
                total_epochs: epochs,
                min_lr: 5e-4,
            },
        );
        for epoch in 0..epochs {
            opt.start_epoch(epoch);
            let batches: Vec<_> = BatchIter::shuffled(dataset.train_len(), 32, false, rng_data)
                .map(|idx| dataset.train_batch(&idx))
                .collect();
            for (x, y) in batches {
                q.quantize_for_forward(&mut model.params_mut());
                let logits = model.forward(&x, true);
                let (_, grad) = cross_entropy(&logits, &y);
                model.backward(&grad);
                q.restore_latent(&mut model.params_mut());
                opt.step(&mut model.params_mut());
                model.zero_grad();
            }
        }
        q.project_final(&mut model.params_mut());
        EvalResult {
            top1: 0.0,
            top5: 0.0,
        }
    };
    match kind {
        CnnKind::ResNet => {
            let mc = ResNetConfig::mini(classes).with_act_bits(4);
            let mut model = ResNet::new(mc, &mut rng);
            let _ = run(&mut model, &mut data_rng);
            evaluate_classifier(&mut model, &x_test, &y_test)
        }
        CnnKind::MobileNet => {
            let mc = MobileNetConfig::mini(classes).with_act_bits(4);
            let mut model = MobileNetV2::new(mc, &mut rng);
            let _ = run(&mut model, &mut data_rng);
            evaluate_classifier(&mut model, &x_test, &y_test)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_rows_match_paper_order() {
        let rows = table2_rows();
        assert_eq!(rows.len(), 6);
        assert_eq!(rows[0].label, "Baseline (FP)");
        assert!(rows[0].policy.is_none());
        assert_eq!(rows[5].label, "MSQ (optimal)");
    }

    #[test]
    fn fast_mode_shrinks_work() {
        let m = RunMode { fast: true };
        assert_eq!(m.epochs(12), 3);
        let cfg = m.shrink_dataset(SynthImageConfig::cifar10_like());
        assert!(cfg.train_per_class < SynthImageConfig::cifar10_like().train_per_class);
    }

    #[test]
    fn tiny_experiment_runs_end_to_end() {
        let ds = ImageDataset::generate(&SynthImageConfig::tiny());
        let res = run_cnn_experiment(CnnKind::ResNet, &ds, Some(MsqPolicy::msq_half()), 2, 42);
        assert!(res.top1 >= 0.0 && res.top1 <= 100.0);
    }
}
