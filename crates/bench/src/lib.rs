//! # mixmatch-bench
//!
//! Benchmark harness for the Mix-and-Match reproduction: one binary per
//! table/figure of the paper (see DESIGN.md's experiment index) plus shared
//! experiment drivers. Criterion micro-benchmarks for the arithmetic kernels
//! live under `benches/`.
//!
//! Every binary accepts `--fast` (shrink datasets/epochs for smoke runs) and
//! prints the paper's published numbers alongside the measured ones so the
//! *shape* comparison is immediate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;

pub use harness::RunMode;
