//! Table V: YOLO detector quantization on the COCO stand-in at two input
//! sizes, reporting mAP@0.5:0.95 and mAP@0.5 (4-bit, 8x compression).

use mixmatch_bench::harness::RunMode;
use mixmatch_data::detection::{DetectionConfig, DetectionDataset};
use mixmatch_fpga::report::TextTable;
use mixmatch_nn::metrics::{map_coco, mean_average_precision, nms, DetBox};
use mixmatch_nn::models::{YoloConfig, YoloDetector, YoloTarget};
use mixmatch_nn::module::Layer;
use mixmatch_nn::optim::{LrSchedule, Sgd};
use mixmatch_quant::admm::{AdmmConfig, AdmmQuantizer, LayerOverride};
use mixmatch_quant::msq::MsqPolicy;
use mixmatch_quant::schemes::Scheme;
use mixmatch_tensor::TensorRng;

fn to_targets(objs: &[mixmatch_data::SceneObject]) -> Vec<YoloTarget> {
    objs.iter()
        .map(|o| YoloTarget {
            cx: o.cx,
            cy: o.cy,
            w: o.w,
            h: o.h,
            class: o.class,
        })
        .collect()
}

fn gt_boxes(objs: &[mixmatch_data::SceneObject]) -> Vec<DetBox> {
    objs.iter()
        .map(|o| DetBox {
            cx: o.cx,
            cy: o.cy,
            w: o.w,
            h: o.h,
            score: 1.0,
            class: o.class,
        })
        .collect()
}

/// Trains a detector (optionally with MSQ) and returns (mAP@0.5:0.95, mAP@0.5).
fn train_and_eval(
    ds: &DetectionDataset,
    image_size: usize,
    policy: Option<MsqPolicy>,
    epochs: usize,
    seed: u64,
) -> (f32, f32) {
    let mut rng = TensorRng::seed_from(seed);
    let mut cfg = YoloConfig::mini(ds.config().classes);
    cfg.image_size = image_size;
    if policy.is_some() {
        cfg = cfg.with_act_bits(4);
    }
    let mut model = YoloDetector::new(cfg, &mut rng);
    let mut quant = policy.map(|p| {
        let mut ac = AdmmConfig::new(p);
        ac.rho = 3e-2;
        // Inter-layer multi-precision (paper §I: MSQ composes with it): the
        // detection head — a tiny fraction of weights but the sole producer
        // of box/objectness regressions — stays at 8-bit fixed; the backbone
        // carries the full 4-bit MSQ.
        AdmmQuantizer::attach(&model.params(), ac).with_override(LayerOverride {
            name_contains: "head".into(),
            policy: MsqPolicy::single(Scheme::Fixed, 8),
        })
    });
    let mut opt = Sgd::with_config(
        0.1,
        0.9,
        1e-4,
        LrSchedule::Cosine {
            total_epochs: epochs,
            min_lr: 1e-3,
        },
    );
    let batch = 8usize;
    let mut data_rng = rng.fork();
    for epoch in 0..epochs {
        opt.start_epoch(epoch);
        if let Some(q) = &mut quant {
            q.epoch_update(&mut model.params_mut());
        }
        for idx in mixmatch_data::BatchIter::shuffled(ds.train_len(), batch, false, &mut data_rng) {
            let (x, objs) = ds.train_batch(&idx);
            let targets: Vec<Vec<YoloTarget>> = objs.iter().map(|o| to_targets(o)).collect();
            let raw = model.forward(&x, true);
            let (_, grad) = model.loss(&raw, &targets);
            model.backward(&grad);
            if let Some(q) = &quant {
                q.penalty_grads(&mut model.params_mut());
            }
            opt.step(&mut model.params_mut());
            model.zero_grad();
        }
    }
    if let Some(q) = &mut quant {
        let _ = q.project_final(&mut model.params_mut());
    }
    // Evaluate.
    let (x_test, objs_test) = ds.test_all();
    let raw = model.forward(&x_test, false);
    let preds: Vec<Vec<DetBox>> = model
        .decode(&raw, 0.3)
        .into_iter()
        .map(|boxes| nms(boxes, 0.45))
        .collect();
    let gts: Vec<Vec<DetBox>> = objs_test.iter().map(|o| gt_boxes(o)).collect();
    let classes = ds.config().classes;
    (
        100.0 * map_coco(&preds, &gts, classes),
        100.0 * mean_average_precision(&preds, &gts, classes, 0.5),
    )
}

fn main() {
    let mode = RunMode::from_args();
    println!("=== Table V: YOLO on the COCO stand-in, 4-bit (8x compression) ===\n");
    let epochs = mode.epochs(44);
    // The paper tests 320 and 640; the stand-in scales 32 -> 48 so the
    // "smaller input = more quantization-sensitive" effect is exercised.
    let sizes = [(32usize, "320 (stand-in 32)"), (48, "640 (stand-in 48)")];
    let paper = [(37.7f32, 56.8f32, 35.8, 53.9), (45.6, 64.7, 44.1, 64.8)];
    let mut t = TextTable::new(vec![
        "image size",
        "scheme",
        "mAP@0.5:0.95",
        "mAP@0.5",
        "paper (.5:.95 / .5)",
    ]);
    for ((size, label), (p_fp_c, p_fp_5, p_q_c, p_q_5)) in sizes.iter().zip(paper) {
        let mut dcfg = DetectionConfig::coco_like(*size);
        if mode.fast {
            dcfg.train_scenes /= 4;
            dcfg.test_scenes /= 2;
        }
        let ds = DetectionDataset::generate(&dcfg);
        let (fp_coco, fp_50) = train_and_eval(&ds, *size, None, epochs, 11);
        let (q_coco, q_50) = train_and_eval(&ds, *size, Some(MsqPolicy::msq_optimal()), epochs, 11);
        t.row(vec![
            label.to_string(),
            "Baseline (FP)".to_string(),
            format!("{fp_coco:.1}"),
            format!("{fp_50:.1}"),
            format!("{p_fp_c:.1} / {p_fp_5:.1}"),
        ]);
        t.row(vec![
            label.to_string(),
            "MSQ".to_string(),
            format!("{q_coco:.1}"),
            format!("{q_50:.1}"),
            format!("{p_q_c:.1} / {p_q_5:.1}"),
        ]);
    }
    println!("{}", t.render());
    println!("Shape target: MSQ keeps mAP within a few points of FP; degradation is");
    println!("larger at the smaller input size (paper §IV-C2).");
}
