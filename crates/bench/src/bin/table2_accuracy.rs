//! Table II: accuracy of P2 / Fixed / SP2 / MSQ quantization for the ResNet
//! and MobileNet-v2 stand-ins on the CIFAR10 / CIFAR100 / ImageNet stand-in
//! datasets (4-bit weights and activations, ADMM training).
//!
//! Shape target (paper): P2 loses ~1-2 points; Fixed and SP2 are within
//! noise of the float baseline; MSQ matches or beats both single schemes.

use mixmatch_bench::harness::{run_cnn_experiment_seeds, table2_rows, CnnKind, RunMode};
use mixmatch_data::{ImageDataset, SynthImageConfig};
use mixmatch_fpga::report::{fmt_with_delta, TextTable};

fn main() {
    let mode = RunMode::from_args();
    println!("=== Table II: quantization scheme accuracy (W/A = 4/4) ===");
    if mode.fast {
        println!("(--fast: reduced datasets/epochs)");
    }
    println!();
    let datasets = [
        ("CIFAR10-like", SynthImageConfig::cifar10_like(), 12usize),
        ("CIFAR100-like", SynthImageConfig::cifar100_like(), 12),
        ("ImageNet-like", SynthImageConfig::imagenet_like(), 10),
    ];
    // Paper deltas vs FP baseline (top-1), for side-by-side shape checking:
    // rows: P2, Fixed, SP2, MSQ(half), MSQ(opt).
    let paper_deltas: [(&str, [[f32; 5]; 2]); 3] = [
        (
            "CIFAR10",
            [
                [-0.65, -0.19, -0.15, -0.09, 0.03], // ResNet-18
                [-1.17, -0.17, 0.21, 0.06, 0.04],   // MobileNet-v2
            ],
        ),
        (
            "CIFAR100",
            [
                [-0.61, -0.12, -0.17, 0.09, 0.11],
                [-2.80, -0.32, -0.35, -0.27, 0.02],
            ],
        ),
        (
            "ImageNet",
            [
                [-1.56, -0.04, -0.02, 0.35, 0.51],
                [-1.95, -0.62, -0.56, -0.62, -0.57],
            ],
        ),
    ];

    for ((ds_name, cfg, epochs_full), (paper_name, paper)) in datasets.iter().zip(paper_deltas) {
        let cfg = mode.shrink_dataset(cfg.clone());
        let epochs = mode.epochs(*epochs_full);
        let ds = ImageDataset::generate(&cfg);
        println!(
            "--- {ds_name} ({} classes, {} train / {} test) ---\n",
            cfg.classes,
            ds.train_len(),
            ds.test_len()
        );
        for (kind, kind_name, paper_col) in [
            (CnnKind::ResNet, "ResNet (mini)", paper[0]),
            (CnnKind::MobileNet, "MobileNet-v2 (mini)", paper[1]),
        ] {
            let mut t = TextTable::new(vec![
                "scheme",
                "Top-1 (ours)",
                "Top-5 (ours)",
                "paper Δ top-1",
            ]);
            // Same seeds for every row: paired comparison across schemes.
            let seeds: &[u64] = if mode.fast { &[7] } else { &[7, 8] };
            let mut baseline = 0.0f32;
            for (ri, row) in table2_rows().iter().enumerate() {
                let res = run_cnn_experiment_seeds(kind, &ds, row.policy, epochs, seeds);
                if row.policy.is_none() {
                    baseline = res.top1;
                    t.row(vec![
                        row.label.to_string(),
                        format!("{:.2}", res.top1),
                        format!("{:.2}", res.top5),
                        "-".to_string(),
                    ]);
                } else {
                    t.row(vec![
                        row.label.to_string(),
                        fmt_with_delta(res.top1, baseline),
                        format!("{:.2}", res.top5),
                        format!("{:+.2}", paper_col[ri - 1]),
                    ]);
                }
            }
            println!("{kind_name} on {paper_name}:");
            println!("{}", t.render());
        }
    }
    println!("Shape targets: P2 worst; Fixed ≈ SP2 ≈ baseline; MSQ ≥ max(Fixed, SP2).");
}
