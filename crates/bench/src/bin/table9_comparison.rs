//! Table IX: comparison of our optimal CNN implementations against published
//! FPGA designs (GOPS/DSP, GOPS/kLUT, FPS, accuracy).

use mixmatch_fpga::perf::{table9_our_columns, table9_reference_columns};
use mixmatch_fpga::report::TextTable;
use mixmatch_fpga::sim::SimParams;

fn main() {
    println!("=== Table IX: CNN implementations on ImageNet vs previous designs ===\n");
    let mut t = TextTable::new(vec![
        "implementation",
        "device",
        "W/A",
        "Top-1",
        "MHz",
        "LUT",
        "DSP",
        "BRAM36",
        "GOPS",
        "FPS",
        "GOPS/DSP",
        "GOPS/kLUT",
    ]);
    let refs = table9_reference_columns();
    let ours = table9_our_columns(&SimParams::default());
    for col in refs.iter().chain(ours.iter()) {
        t.row(vec![
            col.implementation.clone(),
            col.device.clone(),
            col.bits.to_string(),
            col.top1
                .map(|v| format!("{v:.2}%"))
                .unwrap_or_else(|| "N/A".into()),
            format!("{:.0}", col.freq_mhz),
            format!("{:.0}", col.lut),
            format!("{:.0}", col.dsp),
            format!("{:.1}", col.bram36),
            format!("{:.1}", col.gops),
            format!("{:.1}", col.fps),
            format!("{:.3}", col.gops_per_dsp()),
            format!("{:.3}", col.gops_per_klut()),
        ]);
    }
    println!("{}", t.render());

    // §VI-B2's closing GPU comparison.
    {
        use mixmatch_fpga::arch::AcceleratorConfig;
        use mixmatch_fpga::power::{jetson_agx_reference, PowerModel};
        use mixmatch_fpga::sim::simulate;
        use mixmatch_fpga::workload::Network;
        let cfg = AcceleratorConfig::d2_3();
        let perf = simulate(&Network::resnet18(), &cfg, &SimParams::default());
        let power = PowerModel::default();
        let gpu = jetson_agx_reference();
        println!("GPU comparison (ResNet-18, paper §VI-B2: 99 vs 78 FPS, >3x efficiency):");
        let mut t = TextTable::new(vec!["platform", "FPS", "power", "FPS/W"]);
        t.row(vec![
            format!("XC7Z045 1:2 (ours, simulated)"),
            format!("{:.1}", perf.fps()),
            format!("{:.1} W", power.power_w(&cfg)),
            format!("{:.1}", power.fps_per_watt(&cfg, &perf)),
        ]);
        t.row(vec![
            gpu.name.to_string(),
            format!("{:.1}", gpu.fps),
            format!("{:.1} W", gpu.power_w),
            format!("{:.1}", gpu.fps / gpu.power_w),
        ]);
        println!("{}", t.render());
    }

    println!("(Reference rows reproduce the paper's published numbers; 'ours' rows are");
    println!(" simulated at 100 MHz with Table VIII resource usage. Accuracy columns for");
    println!(" ours are the paper's MSQ ImageNet results — our trained stand-ins live in");
    println!(" table2_accuracy/table3/table4.)\n");
    println!("Shape check (paper §VI-B2): our ResNet-18 columns match [68]/[69] on");
    println!("GOPS/DSP and GOPS/kLUT at higher accuracy; [70] trades accuracy (54.6%)");
    println!("for utilization efficiency; MobileNet-v2 leads every design on FPS.");
}
