//! Table VI: RNN quantization on the three sequence tasks — language
//! modelling (perplexity), phoneme recognition (PER) and sentiment
//! classification (accuracy) — under Fixed / SP2 / MSQ at 4 bits.

use mixmatch_bench::harness::RunMode;
use mixmatch_data::sequences::{
    MarkovTextConfig, MarkovTextCorpus, PhonemeConfig, PhonemeDataset, SentimentConfig,
    SentimentDataset,
};
use mixmatch_fpga::report::TextTable;
use mixmatch_nn::loss::{cross_entropy, perplexity};
use mixmatch_nn::metrics::phoneme_error_rate;
use mixmatch_nn::models::{GruFrameClassifier, LstmClassifier, LstmLanguageModel};
use mixmatch_nn::module::Layer;
use mixmatch_nn::optim::Adam;
use mixmatch_quant::admm::{AdmmConfig, AdmmQuantizer};
use mixmatch_quant::msq::MsqPolicy;
use mixmatch_quant::schemes::Scheme;
use mixmatch_tensor::TensorRng;

/// The four quantized rows of Table VI plus the float baseline.
fn schemes() -> Vec<(&'static str, Option<MsqPolicy>)> {
    vec![
        ("Baseline (FP)", None),
        ("Fixed", Some(MsqPolicy::single(Scheme::Fixed, 4))),
        ("SP2", Some(MsqPolicy::single(Scheme::Sp2, 4))),
        ("MSQ (half/half)", Some(MsqPolicy::msq_half())),
        ("MSQ (optimal)", Some(MsqPolicy::msq_optimal())),
    ]
}

fn make_quantizer(
    params: &[&mixmatch_nn::module::Param],
    policy: Option<MsqPolicy>,
) -> Option<AdmmQuantizer> {
    policy.map(|p| {
        let mut ac = AdmmConfig::new(p);
        ac.rho = 1e-2;
        AdmmQuantizer::attach(params, ac)
    })
}

/// LSTM language model on the Markov corpus → validation perplexity.
fn run_lm(policy: Option<MsqPolicy>, epochs: usize, fast: bool) -> f32 {
    let mut cfg = MarkovTextConfig::ptb_like();
    if fast {
        cfg.train_tokens /= 4;
        cfg.valid_tokens /= 2;
    }
    let corpus = MarkovTextCorpus::generate(&cfg);
    let mut rng = TensorRng::seed_from(21);
    let mut lm = LstmLanguageModel::new(cfg.vocab, 24, 48, 2, &mut rng);
    let mut quant = make_quantizer(&lm.params(), policy);
    let mut opt = Adam::new(1e-3 * 3.0);
    let (seq_len, batch) = (16usize, 8usize);
    for _ in 0..epochs {
        if let Some(q) = &mut quant {
            q.epoch_update(&mut lm.params_mut());
        }
        for (tokens, targets) in MarkovTextCorpus::batches(corpus.train(), seq_len, batch) {
            let logits = lm.forward_tokens(&tokens, true);
            let (_, grad) = cross_entropy(&logits, &targets);
            lm.backward_tokens(&grad, seq_len, batch);
            if let Some(q) = &quant {
                q.penalty_grads(&mut lm.params_mut());
            }
            opt.step(&mut lm.params_mut());
            lm.zero_grad();
        }
    }
    if let Some(q) = &mut quant {
        let _ = q.project_final(&mut lm.params_mut());
    }
    // Validation perplexity.
    let mut nll_sum = 0.0f32;
    let mut n = 0usize;
    for (tokens, targets) in MarkovTextCorpus::batches(corpus.valid(), seq_len, batch) {
        let logits = lm.forward_tokens(&tokens, false);
        let (loss, _) = cross_entropy(&logits, &targets);
        nll_sum += loss * targets.len() as f32;
        n += targets.len();
    }
    perplexity(nll_sum / n.max(1) as f32)
}

/// GRU frame classifier on the phoneme dataset → PER (%).
fn run_gru_per(policy: Option<MsqPolicy>, epochs: usize, fast: bool) -> f32 {
    let mut cfg = PhonemeConfig::timit_like();
    if fast {
        cfg.train_utterances /= 3;
        cfg.test_utterances /= 2;
    }
    let ds = PhonemeDataset::generate(&cfg);
    let mut rng = TensorRng::seed_from(22);
    let mut model = GruFrameClassifier::new(cfg.features, 48, 2, cfg.phonemes, &mut rng);
    let mut quant = make_quantizer(&model.params(), policy);
    let mut opt = Adam::new(3e-3);
    let batch = 8usize;
    let mut data_rng = rng.fork();
    for _ in 0..epochs {
        if let Some(q) = &mut quant {
            q.epoch_update(&mut model.params_mut());
        }
        for idx in mixmatch_data::BatchIter::shuffled(ds.train_len(), batch, false, &mut data_rng) {
            let (x, labels) = ds.train_batch(&idx);
            let logits = model.forward(&x, true);
            // Flatten labels time-major to match [T*B, classes] logits.
            let b = idx.len();
            let t = cfg.frames;
            let mut flat = vec![0usize; t * b];
            for (bi, utt) in labels.iter().enumerate() {
                for (ti, &l) in utt.iter().enumerate() {
                    flat[ti * b + bi] = l;
                }
            }
            let (_, grad) = cross_entropy(&logits, &flat);
            model.backward(&grad);
            if let Some(q) = &quant {
                q.penalty_grads(&mut model.params_mut());
            }
            opt.step(&mut model.params_mut());
            model.zero_grad();
        }
    }
    if let Some(q) = &mut quant {
        let _ = q.project_final(&mut model.params_mut());
    }
    // PER on the test split.
    let idx: Vec<usize> = (0..ds.test_len()).collect();
    let (x, labels) = ds.test_batch(&idx);
    let logits = model.forward(&x, false);
    let b = idx.len();
    let t = cfg.frames;
    let mut hyps = vec![Vec::with_capacity(t); b];
    #[allow(clippy::needless_range_loop)]
    for ti in 0..t {
        for bi in 0..b {
            let row = logits.row(ti * b + bi);
            let mut best = 0usize;
            for (c, &v) in row.iter().enumerate() {
                if v > row[best] {
                    best = c;
                }
            }
            hyps[bi].push(best);
        }
    }
    phoneme_error_rate(&hyps, &labels)
}

/// LSTM sentiment classifier → accuracy (%).
fn run_sentiment(policy: Option<MsqPolicy>, epochs: usize, fast: bool) -> f32 {
    let mut cfg = SentimentConfig::imdb_like();
    if fast {
        cfg.train_reviews /= 4;
        cfg.test_reviews /= 2;
    }
    let ds = SentimentDataset::generate(&cfg);
    let mut rng = TensorRng::seed_from(23);
    let mut model = LstmClassifier::new(cfg.vocab, 16, 32, 3, 2, &mut rng);
    let mut quant = make_quantizer(&model.params(), policy);
    let mut opt = Adam::new(2e-3);
    let batch = 8usize;
    let mut data_rng = rng.fork();
    for _ in 0..epochs {
        if let Some(q) = &mut quant {
            q.epoch_update(&mut model.params_mut());
        }
        for idx in mixmatch_data::BatchIter::shuffled(ds.train_len(), batch, false, &mut data_rng) {
            let (tokens, labels) = ds.train_batch(&idx);
            let logits = model.forward_tokens(&tokens, true);
            let (_, grad) = cross_entropy(&logits, &labels);
            model.backward_tokens(&grad);
            if let Some(q) = &quant {
                q.penalty_grads(&mut model.params_mut());
            }
            opt.step(&mut model.params_mut());
            model.zero_grad();
        }
    }
    if let Some(q) = &mut quant {
        let _ = q.project_final(&mut model.params_mut());
    }
    let idx: Vec<usize> = (0..ds.test_len()).collect();
    let (tokens, labels) = ds.test_batch(&idx);
    let logits = model.forward_tokens(&tokens, false);
    100.0 * mixmatch_nn::metrics::accuracy(&logits, &labels)
}

fn main() {
    let mode = RunMode::from_args();
    println!("=== Table VI: RNN quantization (W/A = 4/4) ===\n");
    let epochs = mode.epochs(16);

    println!("LSTM on PTB stand-in (perplexity, lower better; paper FP 110.89 -> MSQ 112.72):");
    let mut t = TextTable::new(vec!["scheme", "PPL (ours)", "paper PPL"]);
    let paper_ppl = [110.89f32, 113.03, 113.42, 112.74, 112.72];
    for ((label, policy), paper) in schemes().into_iter().zip(paper_ppl) {
        let ppl = run_lm(policy, epochs, mode.fast);
        t.row(vec![
            label.to_string(),
            format!("{ppl:.2}"),
            format!("{paper:.2}"),
        ]);
    }
    println!("{}", t.render());

    println!("GRU on TIMIT stand-in (phoneme error rate %, lower better; paper 19.24 -> 19.53):");
    let mut t = TextTable::new(vec!["scheme", "PER (ours)", "paper PER"]);
    let paper_per = [19.24f32, 20.14, 20.09, 19.58, 19.53];
    for ((label, policy), paper) in schemes().into_iter().zip(paper_per) {
        let per = run_gru_per(policy, epochs, mode.fast);
        t.row(vec![
            label.to_string(),
            format!("{per:.2}%"),
            format!("{paper:.2}%"),
        ]);
    }
    println!("{}", t.render());

    println!("LSTM on IMDB stand-in (accuracy %, higher better; paper 86.37 -> 86.31):");
    let mut t = TextTable::new(vec!["scheme", "accuracy (ours)", "paper accuracy"]);
    let paper_acc = [86.37f32, 86.12, 86.02, 86.28, 86.31];
    for ((label, policy), paper) in schemes().into_iter().zip(paper_acc) {
        let acc = run_sentiment(policy, epochs, mode.fast);
        t.row(vec![
            label.to_string(),
            format!("{acc:.2}%"),
            format!("{paper:.2}%"),
        ]);
    }
    println!("{}", t.render());
    println!("Shape target: quantized rows within a small margin of FP on all three");
    println!("tasks, with MSQ at or ahead of the single-scheme rows (paper §IV-C2).");
}
