//! Figure 1: quantization levels of Fixed / P2 / SP2 at 4-bit precision,
//! plotted against a trained layer's weight distribution.
//!
//! The paper uses layer 4 of MobileNet-v2; here we train the scaled
//! MobileNet stand-in briefly and take an inverted-residual expand layer's
//! weights (Gaussian-like, as in the paper).

use mixmatch_data::{BatchIter, ImageDataset, SynthImageConfig};
use mixmatch_nn::models::{MobileNetConfig, MobileNetV2};
use mixmatch_nn::module::Layer;
use mixmatch_quant::analysis::figure1_data;
use mixmatch_quant::qat::{train_classifier, QatConfig};
use mixmatch_tensor::TensorRng;

fn level_line(label: &str, levels: &[f32], bins: usize) -> String {
    // Mark each level's position on a [-1, 1] axis of `bins` columns.
    let mut axis = vec![' '; bins];
    for &v in levels {
        let pos = (((v + 1.0) / 2.0) * (bins - 1) as f32).round() as usize;
        axis[pos.min(bins - 1)] = '|';
    }
    format!("{label:<8} {}", axis.iter().collect::<String>())
}

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    println!("=== Figure 1: quantization levels vs weight distribution (4-bit) ===\n");
    // Briefly train the MobileNet stand-in so weights take their trained shape.
    let mut rng = TensorRng::seed_from(1);
    let cfg = SynthImageConfig::tiny();
    let ds = ImageDataset::generate(&cfg);
    let mut model = MobileNetV2::new(MobileNetConfig::mini(cfg.classes), &mut rng);
    let epochs = if fast { 1 } else { 4 };
    let mut data_rng = rng.fork();
    let _ = train_classifier(
        &mut model,
        |_| {
            BatchIter::shuffled(ds.train_len(), 16, false, &mut data_rng)
                .map(|idx| ds.train_batch(&idx))
                .collect()
        },
        &QatConfig::float_baseline(epochs, 0.05),
    );
    // An expand-conv weight (the paper's "4th layer of MobileNet-V2").
    let weights = model
        .params()
        .into_iter()
        .find(|p| p.name().contains("expand.weight"))
        .expect("expand layer present")
        .value
        .clone();
    let fig = figure1_data(weights.as_slice(), 4, 61);

    println!(
        "weight histogram (normalised to [-1, 1], {} samples):",
        weights.len()
    );
    println!("         {}", fig.histogram.sparkline());
    println!("{}", level_line("Fixed", &fig.fixed_levels, 61));
    println!("{}", level_line("P2", &fig.pow2_levels, 61));
    println!("{}", level_line("SP2", &fig.sp2_levels, 61));
    println!();
    println!(
        "level counts: Fixed {}  P2 {}  SP2 {} (15 codes, coincident values merged)",
        fig.fixed_levels.len(),
        fig.pow2_levels.len(),
        fig.sp2_levels.len()
    );
    println!("\nlevel values:");
    let fmt = |v: &[f32]| {
        v.iter()
            .filter(|x| **x >= 0.0)
            .map(|x| format!("{x:.4}"))
            .collect::<Vec<_>>()
            .join(" ")
    };
    println!("  Fixed (≥0): {}", fmt(&fig.fixed_levels));
    println!("  P2    (≥0): {}", fmt(&fig.pow2_levels));
    println!("  SP2   (≥0): {}", fmt(&fig.sp2_levels));
    println!("\nPaper's observation: P2 piles resolution near the mean and starves the");
    println!("tails; SP2's levels are near-uniform like fixed-point. See §III-A.");
}
