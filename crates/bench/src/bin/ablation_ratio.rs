//! Ablation: sweep the SP2:fixed partition ratio from 1:0 to 0:1 and report
//! (a) accuracy of the quantized CNN stand-in and (b) simulated throughput —
//! making the paper's "ratio comes from hardware, accuracy is flat" point
//! quantitative.

use mixmatch_bench::harness::{run_cnn_experiment, CnnKind, RunMode};
use mixmatch_data::{ImageDataset, SynthImageConfig};
use mixmatch_fpga::arch::AcceleratorConfig;
use mixmatch_fpga::device::FpgaDevice;
use mixmatch_fpga::report::TextTable;
use mixmatch_fpga::sim::{simulate, SimParams};
use mixmatch_fpga::workload::Network;
use mixmatch_quant::msq::MsqPolicy;
use mixmatch_quant::rowwise::PartitionRatio;

fn main() {
    let mode = RunMode::from_args();
    println!("=== Ablation: SP2 fraction sweep (accuracy vs throughput) ===\n");
    let cfg = mode.shrink_dataset(SynthImageConfig::cifar10_like());
    let ds = ImageDataset::generate(&cfg);
    let epochs = mode.epochs(10);
    let net = Network::resnet18();
    let params = SimParams::default();
    let mut t = TextTable::new(vec![
        "SP2 fraction",
        "ratio",
        "Top-1 (ResNet mini)",
        "sim GOPS (XC7Z045, lanes at ratio)",
    ]);
    for sp2_lanes in [0usize, 8, 16, 24, 32, 48] {
        let frac = sp2_lanes as f32 / (16 + sp2_lanes) as f32;
        let policy = if sp2_lanes == 0 {
            MsqPolicy::mixed(PartitionRatio::new(0.0), 4)
        } else {
            MsqPolicy::mixed(PartitionRatio::new(frac), 4)
        };
        let res = run_cnn_experiment(CnnKind::ResNet, &ds, Some(policy), epochs, 17);
        let hw = AcceleratorConfig {
            blk_out_sp2: sp2_lanes,
            ..AcceleratorConfig::on_device(FpgaDevice::XC7Z045, 0)
        };
        let gops = simulate(&net, &hw, &params).gops();
        let fits = {
            let model = mixmatch_fpga::cost::CostModel::for_device(&hw.device);
            model.usage_with_shell(&hw).utilization(&hw.device).fits()
        };
        t.row(vec![
            format!("{:.2}", frac),
            format!("1:{}", sp2_lanes as f32 / 16.0),
            format!("{:.2}", res.top1),
            format!("{gops:.1}{}", if fits { "" } else { "  (does not fit!)" }),
        ]);
    }
    println!("{}", t.render());
    println!("Expected shape: accuracy is flat across the sweep (scheme mixing is");
    println!("accuracy-neutral) while throughput rises with SP2 lanes until the");
    println!("device LUT budget is exhausted — so the hardware picks the ratio.");
}
