//! Figure 2: LUT/FF/BRAM-per-DSP ratios of six Zynq devices.

use mixmatch_fpga::device::FpgaDevice;
use mixmatch_fpga::report::TextTable;

fn main() {
    println!("=== Figure 2: resource ratio of different FPGA devices ===\n");
    let mut t = TextTable::new(vec!["device", "LUT/DSP", "FF/DSP", "BRAM(Kb)/DSP"]);
    for dev in FpgaDevice::figure2_devices() {
        t.row(vec![
            dev.name.to_string(),
            format!("{:.1}", dev.lut_per_dsp()),
            format!("{:.1}", dev.ff_per_dsp()),
            format!("{:.1}", dev.bram_kb_per_dsp()),
        ]);
    }
    println!("{}", t.render());
    println!("paper bars:   7Z045 242.9/485.8/21.8   7Z020 241.8/483.6/22.9");
    println!("              ZU2CG 196.8/393.6/22.5   ZU3CG 196.0/392.0/21.6");
    println!("              ZU4CG 120.7/241.3/6.3    ZU5CG  93.8/187.7/4.2");
    println!("\nThe 7-series parts offer ~2.6x the LUT headroom per DSP of ZU5CG —");
    println!("exactly the headroom the SP2 GEMM core converts into throughput.");
}
