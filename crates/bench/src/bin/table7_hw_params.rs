//! Table VII: hardware implementation parameters and peak throughput for the
//! six designs, including the DSE that discovers the optimal ratios.

use mixmatch_fpga::arch::AcceleratorConfig;
use mixmatch_fpga::device::FpgaDevice;
use mixmatch_fpga::explore::{optimal_design, sweep, ExploreConfig};
use mixmatch_fpga::report::TextTable;

fn main() {
    println!("=== Table VII: implementation parameters and peak throughput ===\n");
    let paper_gops = [52.8f32, 106.0, 132.0, 208.0, 416.0, 624.0];
    let mut t = TextTable::new(vec![
        "impl",
        "device",
        "Bat",
        "Blk_in",
        "Blk_out fixed",
        "Blk_out SP2",
        "ratio",
        "peak GOPS (ours)",
        "peak GOPS (paper)",
    ]);
    for ((name, cfg), paper) in AcceleratorConfig::table7_designs().iter().zip(paper_gops) {
        t.row(vec![
            name.to_string(),
            format!("XC{}", cfg.device.name),
            cfg.bat.to_string(),
            cfg.blk_in.to_string(),
            cfg.blk_out_fixed.to_string(),
            cfg.blk_out_sp2.to_string(),
            cfg.ratio_label(),
            format!("{:.1}", cfg.peak_gops()),
            format!("{paper:.1}"),
        ]);
    }
    println!("{}", t.render());
    println!("(Our peak counts GEMM MACs only; the paper's adds TensorALU epilogue ops,");
    println!(" a 1.5-3% constant. Design-to-design ratios are identical: 2.0x/2.5x and");
    println!(" 2.0x/3.0x.)\n");

    println!("=== DSE: growing Blk_out,sp2 until the LUT ceiling ===\n");
    for device in [FpgaDevice::XC7Z020, FpgaDevice::XC7Z045] {
        println!("{device}:");
        let mut t = TextTable::new(vec!["Blk_out,sp2", "LUT util (with shell)", "feasible"]);
        for p in sweep(device, &ExploreConfig::default()) {
            t.row(vec![
                p.config.blk_out_sp2.to_string(),
                format!("{:.1}%", p.lut_util * 100.0),
                if p.feasible { "yes" } else { "no" }.to_string(),
            ]);
        }
        println!("{}", t.render());
        let opt = optimal_design(device, &ExploreConfig::default());
        println!(
            "optimum on {}: Blk_out,sp2 = {} (ratio {}) -> feed PR_SP2 = {:.3} to Algorithm 2\n",
            device.name,
            opt.blk_out_sp2,
            opt.ratio_label(),
            opt.partition_ratio().sp2_fraction()
        );
    }
}
