//! Serving benchmark: an open-loop synthetic arrival process replayed
//! against `ModelServer` — the traffic-shaped counterpart of the
//! closed-loop `throughput` bench.
//!
//! Requests arrive with exponential inter-arrival times (a Poisson
//! process) at several offered rates, each a fraction of the engine's
//! measured closed-loop capacity. The server coalesces them dynamically
//! (`max_batch` / `max_wait`) and the run reports achieved throughput,
//! admission rejections and queue-to-reply latency percentiles per rate.
//!
//! Writes `BENCH_serving.json` into the working directory. Pass `--smoke`
//! for a CI-sized run.

use mixmatch_fpga::bridge::FpgaTarget;
use mixmatch_fpga::device::FpgaDevice;
use mixmatch_nn::models::{ResNet, ResNetConfig};
use mixmatch_quant::engine::BatchEngine;
use mixmatch_quant::export::{export_compiled, import_compiled};
use mixmatch_serve::{ModelServer, Pending, ServeConfig, ServeError};
use mixmatch_tensor::{Tensor, TensorRng};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (input_hw, secs_per_rate) = if smoke { (8usize, 0.3f64) } else { (16, 2.0) };
    let device = FpgaDevice::XC7Z045;
    let mut rng = TensorRng::seed_from(9);
    let mut model = ResNet::new(ResNetConfig::mini(10).with_act_bits(4), &mut rng);
    let compiled = mixmatch_quant::pipeline::QuantPipeline::for_device(
        FpgaTarget::new(device).with_input_size(input_hw),
    )
    .quantize(&mut model)
    .expect("quantize resnet-mini");
    // Round-trip through the artifact: servers load what deployments ship.
    let artifact = export_compiled(&compiled).expect("export");
    let served = import_compiled(&artifact).expect("import");

    // Closed-loop capacity: batch-32 plan throughput on the shared pool —
    // the ceiling the open-loop rates are scaled against.
    let engine = BatchEngine::new();
    let warm: Vec<Tensor> = (0..32)
        .map(|_| Tensor::rand_uniform(&[3, input_hw, input_hw], 0.0, 1.0, &mut rng))
        .collect();
    engine.run_plan_batch(&served, &warm).expect("warmup");
    let start = Instant::now();
    let mut iters = 0usize;
    while start.elapsed().as_secs_f64() < secs_per_rate.min(0.5) || iters < 2 {
        engine.run_plan_batch(&served, &warm).expect("capacity run");
        iters += 1;
    }
    let capacity_ips = (32 * iters) as f64 / start.elapsed().as_secs_f64();
    println!(
        "=== Open-loop serving (resnet18-mini @ {input_hw}px, {} worker threads) ===",
        engine.threads()
    );
    println!("closed-loop capacity (batch 32): {capacity_ips:9.1} images/sec\n");
    drop(engine);

    let config = ServeConfig::default()
        .with_max_batch(32)
        .with_max_wait(Duration::from_millis(2))
        .with_queue_depth(256);
    let mut rows = String::new();
    for &fraction in &[0.25f64, 0.5, 0.8] {
        let offered = (capacity_ips * fraction).max(1.0);
        // Fresh server per rate: counters start clean.
        let server = ModelServer::start(config.clone());
        server.load_artifact("resnet", &artifact).expect("load");
        let n_requests = ((offered * secs_per_rate) as usize).max(8);
        let mut arrival_rng = TensorRng::seed_from(1000 + (fraction * 100.0) as u64);
        let run_start = Instant::now();
        let mut next_at = Duration::ZERO;
        let mut pending: Vec<Pending> = Vec::with_capacity(n_requests);
        let mut rejected = 0usize;
        for _ in 0..n_requests {
            // Exponential inter-arrival at the offered rate.
            let u = arrival_rng.uniform().clamp(1e-6, 1.0 - 1e-6);
            next_at += Duration::from_secs_f64(-(1.0 - u as f64).ln() / offered);
            if let Some(sleep) = next_at.checked_sub(run_start.elapsed()) {
                std::thread::sleep(sleep);
            }
            let image = Tensor::rand_uniform(&[3, input_hw, input_hw], 0.0, 1.0, &mut arrival_rng);
            match server.infer("resnet", image) {
                Ok(p) => pending.push(p),
                Err(ServeError::Overloaded { .. }) => rejected += 1,
                Err(e) => panic!("unexpected admission error: {e}"),
            }
        }
        for p in pending {
            p.wait().expect("admitted request completes");
        }
        let elapsed = run_start.elapsed().as_secs_f64();
        let stats = server.stats("resnet").expect("stats");
        assert_eq!(stats.completed + stats.rejected, n_requests as u64);
        assert_eq!(stats.rejected, rejected as u64);
        let achieved = stats.completed as f64 / elapsed;
        println!(
            "offered {offered:8.1} img/s ({:>3.0}% of capacity): achieved {achieved:8.1} img/s, \
             rejected {rejected:>4}, mean batch {:5.2}, p50 {:.2} ms, p95 {:.2} ms, p99 {:.2} ms",
            fraction * 100.0,
            stats.mean_batch,
            stats.p50.as_secs_f64() * 1e3,
            stats.p95.as_secs_f64() * 1e3,
            stats.p99.as_secs_f64() * 1e3,
        );
        let _ = write!(
            rows,
            r#"{}    {{"offered_images_per_sec": {offered:.1}, "capacity_fraction": {fraction}, "requests": {n_requests}, "achieved_images_per_sec": {achieved:.1}, "completed": {}, "rejected": {rejected}, "mean_batch": {:.2}, "p50_ms": {:.3}, "p95_ms": {:.3}, "p99_ms": {:.3}}}"#,
            if rows.is_empty() { "" } else { ",\n" },
            stats.completed,
            stats.mean_batch,
            stats.p50.as_secs_f64() * 1e3,
            stats.p95.as_secs_f64() * 1e3,
            stats.p99.as_secs_f64() * 1e3,
        );
        server.shutdown();
    }

    let json = format!(
        r#"{{
  "bench": "serving",
  "model": "resnet18-mini",
  "device": "{}",
  "input_hw": {input_hw},
  "smoke": {smoke},
  "host": {{"os": "{}", "arch": "{}", "parallelism": {}}},
  "server": {{"max_batch": 32, "max_wait_ms": 2, "queue_depth": 256}},
  "closed_loop_capacity_images_per_sec": {capacity_ips:.1},
  "rates": [
{rows}
  ]
}}
"#,
        device.name,
        std::env::consts::OS,
        std::env::consts::ARCH,
        std::thread::available_parallelism().map_or(1, |v| v.get()),
    );
    std::fs::write("BENCH_serving.json", &json).expect("write BENCH_serving.json");
    println!("\nwrote BENCH_serving.json");
}
