//! Serving benchmark: an open-loop synthetic arrival process replayed
//! against `ModelServer` — the traffic-shaped counterpart of the
//! closed-loop `throughput` bench.
//!
//! Requests arrive with exponential inter-arrival times (a Poisson
//! process) at several offered rates, each a fraction of the engine's
//! measured closed-loop capacity. The server coalesces them dynamically
//! (`max_batch` / `max_wait`) and the run reports achieved throughput,
//! admission rejections and queue-to-reply latency percentiles per rate.
//!
//! A second sweep replays the same traffic shape against a [`FleetServer`]
//! of 1, 2 and 4 heterogeneous replicas **over real TCP sockets** (one
//! blocking [`FleetClient`] per submitter thread), reporting client-side
//! tail latency versus fleet size and each replica's share of the work.
//!
//! Writes `BENCH_serving.json` into the working directory. Pass `--smoke`
//! for a CI-sized run.

use mixmatch_fpga::bridge::FpgaTarget;
use mixmatch_fpga::device::FpgaDevice;
use mixmatch_nn::models::{ResNet, ResNetConfig};
use mixmatch_quant::engine::BatchEngine;
use mixmatch_quant::export::{export_compiled, import_compiled};
use mixmatch_serve::{
    FleetClient, FleetConfig, FleetServer, ModelServer, Pending, ReplicaSpec, ServeConfig,
    ServeError, WireServer,
};
use mixmatch_tensor::{Tensor, TensorRng};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Client-side percentile over measured round-trip latencies.
fn percentile_ms(sorted: &[Duration], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((sorted.len() as f64) * (q / 100.0)).ceil().max(1.0) as usize;
    sorted[rank.min(sorted.len()) - 1].as_secs_f64() * 1e3
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (input_hw, secs_per_rate) = if smoke { (8usize, 0.3f64) } else { (16, 2.0) };
    let device = FpgaDevice::XC7Z045;
    let mut rng = TensorRng::seed_from(9);
    let mut model = ResNet::new(ResNetConfig::mini(10).with_act_bits(4), &mut rng);
    let compiled = mixmatch_quant::pipeline::QuantPipeline::for_device(
        FpgaTarget::new(device).with_input_size(input_hw),
    )
    .quantize(&mut model)
    .expect("quantize resnet-mini");
    // Round-trip through the artifact: servers load what deployments ship.
    let artifact = export_compiled(&compiled).expect("export");
    let served = import_compiled(&artifact).expect("import");

    // Closed-loop capacity: batch-32 plan throughput on the shared pool —
    // the ceiling the open-loop rates are scaled against.
    let engine = BatchEngine::new();
    let warm: Vec<Tensor> = (0..32)
        .map(|_| Tensor::rand_uniform(&[3, input_hw, input_hw], 0.0, 1.0, &mut rng))
        .collect();
    engine.run_plan_batch(&served, &warm).expect("warmup");
    let start = Instant::now();
    let mut iters = 0usize;
    while start.elapsed().as_secs_f64() < secs_per_rate.min(0.5) || iters < 2 {
        engine.run_plan_batch(&served, &warm).expect("capacity run");
        iters += 1;
    }
    let capacity_ips = (32 * iters) as f64 / start.elapsed().as_secs_f64();
    println!(
        "=== Open-loop serving (resnet18-mini @ {input_hw}px, {} worker threads) ===",
        engine.threads()
    );
    println!("closed-loop capacity (batch 32): {capacity_ips:9.1} images/sec\n");
    drop(engine);

    let config = ServeConfig::default()
        .with_max_batch(32)
        .with_max_wait(Duration::from_millis(2))
        .with_queue_depth(256);
    let mut rows = String::new();
    for &fraction in &[0.25f64, 0.5, 0.8] {
        let offered = (capacity_ips * fraction).max(1.0);
        // Fresh server per rate: counters start clean.
        let server = ModelServer::start(config.clone());
        server.load_artifact("resnet", &artifact).expect("load");
        let n_requests = ((offered * secs_per_rate) as usize).max(8);
        let mut arrival_rng = TensorRng::seed_from(1000 + (fraction * 100.0) as u64);
        let run_start = Instant::now();
        let mut next_at = Duration::ZERO;
        let mut pending: Vec<Pending> = Vec::with_capacity(n_requests);
        let mut rejected = 0usize;
        for _ in 0..n_requests {
            // Exponential inter-arrival at the offered rate.
            let u = arrival_rng.uniform().clamp(1e-6, 1.0 - 1e-6);
            next_at += Duration::from_secs_f64(-(1.0 - u as f64).ln() / offered);
            if let Some(sleep) = next_at.checked_sub(run_start.elapsed()) {
                std::thread::sleep(sleep);
            }
            let image = Tensor::rand_uniform(&[3, input_hw, input_hw], 0.0, 1.0, &mut arrival_rng);
            match server.infer("resnet", image) {
                Ok(p) => pending.push(p),
                Err(ServeError::Overloaded { .. }) => rejected += 1,
                Err(e) => panic!("unexpected admission error: {e}"),
            }
        }
        for p in pending {
            p.wait().expect("admitted request completes");
        }
        let elapsed = run_start.elapsed().as_secs_f64();
        let stats = server.stats("resnet").expect("stats");
        assert_eq!(stats.completed + stats.rejected, n_requests as u64);
        assert_eq!(stats.rejected, rejected as u64);
        let achieved = stats.completed as f64 / elapsed;
        println!(
            "offered {offered:8.1} img/s ({:>3.0}% of capacity): achieved {achieved:8.1} img/s, \
             rejected {rejected:>4}, mean batch {:5.2}, p50 {:.2} ms, p95 {:.2} ms, p99 {:.2} ms, \
             p99.9 {:.2} ms",
            fraction * 100.0,
            stats.mean_batch,
            stats.p50.as_secs_f64() * 1e3,
            stats.p95.as_secs_f64() * 1e3,
            stats.p99.as_secs_f64() * 1e3,
            stats.p999.as_secs_f64() * 1e3,
        );
        // Where the latency went: queue wait until batch execution starts,
        // the batcher's coalesce window, and the engine itself.
        let mut stage_rows = String::new();
        let mut stage_line = String::new();
        for stage in &stats.stages {
            let _ = write!(
                stage_line,
                " {} p95 {:.2} ms",
                stage.stage,
                stage.p95.as_secs_f64() * 1e3
            );
            let _ = write!(
                stage_rows,
                r#"{}"{}": {{"count": {}, "p50_ms": {:.3}, "p95_ms": {:.3}, "p99_ms": {:.3}}}"#,
                if stage_rows.is_empty() { "" } else { ", " },
                stage.stage,
                stage.count,
                stage.p50.as_secs_f64() * 1e3,
                stage.p95.as_secs_f64() * 1e3,
                stage.p99.as_secs_f64() * 1e3,
            );
        }
        println!("    stage breakdown:{stage_line}");
        let _ = write!(
            rows,
            r#"{}    {{"offered_images_per_sec": {offered:.1}, "capacity_fraction": {fraction}, "requests": {n_requests}, "achieved_images_per_sec": {achieved:.1}, "completed": {}, "rejected": {rejected}, "mean_batch": {:.2}, "p50_ms": {:.3}, "p95_ms": {:.3}, "p99_ms": {:.3}, "p999_ms": {:.3}, "stages": {{{stage_rows}}}}}"#,
            if rows.is_empty() { "" } else { ",\n" },
            stats.completed,
            stats.mean_batch,
            stats.p50.as_secs_f64() * 1e3,
            stats.p95.as_secs_f64() * 1e3,
            stats.p99.as_secs_f64() * 1e3,
            stats.p999.as_secs_f64() * 1e3,
        );
        server.shutdown();
    }

    // ---- Fleet sweep: tail latency vs fleet size, over real sockets ----
    //
    // The same arrival shape, now crossing the TCP wire protocol into a
    // FleetServer of heterogeneous replicas. Clients are blocking (one
    // in-flight request each), so this measures the full stack: framing,
    // routing, per-replica batching, and the reply path.
    println!("\n=== Fleet serving over TCP (heterogeneous replicas) ===");
    let catalog = [
        FpgaDevice::XC7Z045,
        FpgaDevice::XC7Z020,
        FpgaDevice::XCZU3CG,
        FpgaDevice::XCZU5CG,
    ];
    const CLIENTS: usize = 4;
    let per_client = if smoke { 25usize } else { 150 };
    let client_rate = (capacity_ips * 0.5 / CLIENTS as f64).max(1.0);
    let mut fleet_rows = String::new();
    for &size in &[1usize, 2, 4] {
        let specs: Vec<ReplicaSpec> = catalog[..size]
            .iter()
            .enumerate()
            .map(|(i, &d)| {
                ReplicaSpec::new(
                    format!("r{i}"),
                    FpgaTarget::new(d).with_input_size(input_hw),
                )
            })
            .collect();
        let fleet = Arc::new(FleetServer::start(
            FleetConfig::default()
                .with_max_batch(32)
                .with_max_wait(Duration::from_millis(2))
                .with_replica_config(config.clone()),
            specs,
        ));
        let wire = WireServer::bind("127.0.0.1:0", Arc::clone(&fleet)).expect("bind wire");
        let addr = wire.local_addr();
        FleetClient::connect(addr)
            .expect("connect loader")
            .load("resnet", &artifact)
            .expect("load over tcp");

        let run_start = Instant::now();
        let mut latencies: Vec<Duration> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..CLIENTS)
                .map(|c| {
                    scope.spawn(move || {
                        let mut client = FleetClient::connect(addr).expect("connect client");
                        let mut rng = TensorRng::seed_from(7_000 + c as u64);
                        let start = Instant::now();
                        let mut next_at = Duration::ZERO;
                        let mut measured = Vec::with_capacity(per_client);
                        for _ in 0..per_client {
                            let u = rng.uniform().clamp(1e-6, 1.0 - 1e-6);
                            next_at +=
                                Duration::from_secs_f64(-(1.0 - u as f64).ln() / client_rate);
                            if let Some(sleep) = next_at.checked_sub(start.elapsed()) {
                                std::thread::sleep(sleep);
                            }
                            let image =
                                Tensor::rand_uniform(&[3, input_hw, input_hw], 0.0, 1.0, &mut rng);
                            let sent = Instant::now();
                            client.infer("resnet", &image).expect("infer over tcp");
                            measured.push(sent.elapsed());
                        }
                        measured
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("client thread"))
                .collect()
        });
        let elapsed = run_start.elapsed().as_secs_f64();
        latencies.sort();
        let total = latencies.len();
        let achieved = total as f64 / elapsed;
        let stats = fleet.stats();
        let completed_total: u64 = stats
            .replicas
            .iter()
            .flat_map(|r| r.models.iter())
            .map(|m| m.completed)
            .sum();
        let mut replica_rows = String::new();
        for replica in &stats.replicas {
            let completed: u64 = replica.models.iter().map(|m| m.completed).sum();
            let share = completed as f64 / completed_total.max(1) as f64;
            println!(
                "  {} ({}): {completed:>5} images ({:>4.1}% of fleet)",
                replica.label,
                replica.target,
                share * 100.0
            );
            let _ = write!(
                replica_rows,
                r#"{}        {{"label": "{}", "target": "{}", "completed": {completed}, "share": {share:.4}}}"#,
                if replica_rows.is_empty() { "" } else { ",\n" },
                replica.label,
                replica.target,
            );
        }
        println!(
            "fleet of {size}: achieved {achieved:8.1} img/s over TCP, p50 {:.2} ms, p95 {:.2} ms, \
             p99 {:.2} ms, p99.9 {:.2} ms",
            percentile_ms(&latencies, 50.0),
            percentile_ms(&latencies, 95.0),
            percentile_ms(&latencies, 99.0),
            percentile_ms(&latencies, 99.9),
        );
        let _ = write!(
            fleet_rows,
            r#"{}    {{"replicas": {size}, "clients": {CLIENTS}, "requests": {total}, "offered_images_per_sec": {:.1}, "achieved_images_per_sec": {achieved:.1}, "p50_ms": {:.3}, "p95_ms": {:.3}, "p99_ms": {:.3}, "p999_ms": {:.3}, "replica_utilization": [
{replica_rows}
    ]}}"#,
            if fleet_rows.is_empty() { "" } else { ",\n" },
            client_rate * CLIENTS as f64,
            percentile_ms(&latencies, 50.0),
            percentile_ms(&latencies, 95.0),
            percentile_ms(&latencies, 99.0),
            percentile_ms(&latencies, 99.9),
        );
        wire.stop();
        fleet.shutdown();
    }

    let json = format!(
        r#"{{
  "bench": "serving",
  "model": "resnet18-mini",
  "device": "{}",
  "input_hw": {input_hw},
  "smoke": {smoke},
  "host": {{"os": "{}", "arch": "{}", "parallelism": {}}},
  "server": {{"max_batch": 32, "max_wait_ms": 2, "queue_depth": 256}},
  "closed_loop_capacity_images_per_sec": {capacity_ips:.1},
  "rates": [
{rows}
  ],
  "fleet": [
{fleet_rows}
  ]
}}
"#,
        device.name,
        std::env::consts::OS,
        std::env::consts::ARCH,
        std::thread::available_parallelism().map_or(1, |v| v.get()),
    );
    std::fs::write("BENCH_serving.json", &json).expect("write BENCH_serving.json");
    println!("\nwrote BENCH_serving.json");
}
