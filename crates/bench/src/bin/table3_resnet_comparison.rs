//! Table III: MSQ vs existing quantization methods, ResNet stand-in on the
//! ImageNet stand-in. DoReFa and PACT are re-trained here; the other methods
//! are carried as published reference rows.

use mixmatch_bench::harness::{
    run_cnn_experiment_seeds, run_cnn_ste_baseline_seeds, CnnKind, RunMode,
};
use mixmatch_data::{ImageDataset, SynthImageConfig};
use mixmatch_fpga::report::TextTable;
use mixmatch_quant::baselines::{table3_reference_rows, BaselineMethod};
use mixmatch_quant::msq::MsqPolicy;

fn main() {
    let mode = RunMode::from_args();
    println!("=== Table III: comparison with existing works (ResNet, ImageNet stand-in) ===\n");
    let cfg = mode.shrink_dataset(SynthImageConfig::imagenet_like());
    let ds = ImageDataset::generate(&cfg);
    let epochs = mode.epochs(12);

    // Paired seeds: every method trains from the same three inits so the
    // comparison measures the method, not the seed.
    let seeds: &[u64] = if mode.fast { &[3] } else { &[3, 4, 5] };
    let fp = run_cnn_experiment_seeds(CnnKind::ResNet, &ds, None, epochs, seeds);
    let dorefa =
        run_cnn_ste_baseline_seeds(CnnKind::ResNet, &ds, BaselineMethod::DoReFa, epochs, seeds);
    let pact =
        run_cnn_ste_baseline_seeds(CnnKind::ResNet, &ds, BaselineMethod::Pact, epochs, seeds);
    let msq = run_cnn_experiment_seeds(
        CnnKind::ResNet,
        &ds,
        Some(MsqPolicy::msq_optimal()),
        epochs,
        seeds,
    );

    let mut t = TextTable::new(vec![
        "method",
        "bits (W/A)",
        "Top-1 ours",
        "Top-5 ours",
        "Top-1 paper",
        "Top-5 paper",
    ]);
    let fmt = |v: f32| format!("{v:.2}");
    let opt = |v: Option<f32>| v.map(|x| format!("{x:.2}")).unwrap_or_else(|| "N/A".into());
    for r in table3_reference_rows() {
        let ours = match r.method {
            "Baseline(FP)" => Some(fp),
            "Dorefa" => Some(dorefa),
            "PACT" => Some(pact),
            "MSQ" => Some(msq),
            _ => None,
        };
        t.row(vec![
            r.method.to_string(),
            r.bits.to_string(),
            ours.map(|e| fmt(e.top1))
                .unwrap_or_else(|| "(ref only)".into()),
            ours.map(|e| fmt(e.top5))
                .unwrap_or_else(|| "(ref only)".into()),
            opt(r.top1),
            opt(r.top5),
        ]);
    }
    println!("{}", t.render());
    println!("Shape target: MSQ ≥ DoReFa and ≥ PACT on the same task (paper: 70.27 vs");
    println!("68.10 / 69.20), with MSQ at or above the float baseline.");
}
