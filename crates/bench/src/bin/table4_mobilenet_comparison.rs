//! Table IV: MSQ vs PACT/DSQ on the MobileNet-v2 stand-in (ImageNet
//! stand-in) — the hard-to-quantize lightweight model.

use mixmatch_bench::harness::{
    run_cnn_experiment_seeds, run_cnn_ste_baseline_seeds, CnnKind, RunMode,
};
use mixmatch_data::{ImageDataset, SynthImageConfig};
use mixmatch_fpga::report::TextTable;
use mixmatch_quant::baselines::{table4_reference_rows, BaselineMethod};
use mixmatch_quant::msq::MsqPolicy;

fn main() {
    let mode = RunMode::from_args();
    println!(
        "=== Table IV: comparison with existing works (MobileNet-v2, ImageNet stand-in) ===\n"
    );
    let cfg = mode.shrink_dataset(SynthImageConfig::imagenet_like());
    let ds = ImageDataset::generate(&cfg);
    let epochs = mode.epochs(12);

    let seeds: &[u64] = if mode.fast { &[5] } else { &[5, 6, 7] };
    let fp = run_cnn_experiment_seeds(CnnKind::MobileNet, &ds, None, epochs, seeds);
    let pact =
        run_cnn_ste_baseline_seeds(CnnKind::MobileNet, &ds, BaselineMethod::Pact, epochs, seeds);
    let msq = run_cnn_experiment_seeds(
        CnnKind::MobileNet,
        &ds,
        Some(MsqPolicy::msq_optimal()),
        epochs,
        seeds,
    );

    let mut t = TextTable::new(vec![
        "method",
        "bits (W/A)",
        "Top-1 ours",
        "Top-5 ours",
        "Top-1 paper",
        "Top-5 paper",
    ]);
    let opt = |v: Option<f32>| v.map(|x| format!("{x:.2}")).unwrap_or_else(|| "N/A".into());
    for r in table4_reference_rows() {
        let ours = match r.method {
            "Baseline(FP)" => Some(fp),
            "PACT" => Some(pact),
            "MSQ" => Some(msq),
            _ => None,
        };
        t.row(vec![
            r.method.to_string(),
            r.bits.to_string(),
            ours.map(|e| format!("{:.2}", e.top1))
                .unwrap_or_else(|| "(ref only)".into()),
            ours.map(|e| format!("{:.2}", e.top5))
                .unwrap_or_else(|| "(ref only)".into()),
            opt(r.top1),
            opt(r.top5),
        ]);
    }
    println!("{}", t.render());
    println!("Shape target: 4-bit quantization costs MobileNet-v2 visibly more than it");
    println!("costs ResNet (paper: -6.2 vs +0.5). Note: at stand-in scale the PACT/");
    println!("DoReFa baselines do not degrade the way they do at ImageNet capacity");
    println!("(quantize-on-forward even regularises tiny models), so the paper's");
    println!("method ordering on MobileNet is below this reproduction's noise floor;");
    println!("the MobileNet-vs-ResNet sensitivity gap is the resolvable claim.");
}
