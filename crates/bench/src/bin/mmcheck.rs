//! `mmcheck` — the static plan linter: runs `mixmatch_quant::verify` over
//! `MMCM` artifacts and/or freshly-lowered models and prints the
//! diagnostic report, without executing a single inference step.
//!
//! ```text
//! mmcheck model.mmcm other.mmcm     # lint artifact files
//! mmcheck --model resnet            # lower+quantize a model, lint its plan
//! mmcheck --model mlp --model yolo model.mmcm
//! mmcheck --dump --model resnet     # also pretty-print the plan
//! mmcheck --no-opt --model resnet   # lint the raw (pre-optimizer) plan
//! ```
//!
//! `--model` accepts `resnet`, `mlp`, `yolo` or `mobilenet` (the mini
//! configs the test tree exercises). `--dump` prints every linted plan
//! step by step — op, source/destination buffers, shapes — plus the
//! buffer table and its high-water mark. `--no-opt` builds `--model`
//! targets with the plan optimizer disabled, so raw and optimized plans
//! can be diffed side by side. Exit status: 0 when every target verifies
//! clean, 1 when any target fails parsing or verification, 2 on usage or
//! I/O errors.
//!
//! Artifact targets are deliberately linted *below* `import_compiled` (which
//! now verifies on its own): the bytes are parsed, the plan and layer table
//! are extracted, and the verifier pipeline runs explicitly so the report is
//! printed rule by rule instead of folded into an error string.

use mixmatch_fpga::bridge::FpgaTarget;
use mixmatch_fpga::device::FpgaDevice;
use mixmatch_nn::layers::{Linear, Relu};
use mixmatch_nn::lower::{ActKind, PoolKind};
use mixmatch_nn::models::{
    MobileNetConfig, MobileNetV2, ResNet, ResNetConfig, YoloConfig, YoloDetector,
};
use mixmatch_nn::module::Sequential;
use mixmatch_quant::export::import_compiled;
use mixmatch_quant::graph::{Epilogue, ExecutionPlan, PostOp, StepOp};
use mixmatch_quant::msq::MsqPolicy;
use mixmatch_quant::pipeline::{CompiledModel, QuantPipeline};
use mixmatch_quant::{verify, QuantError};
use mixmatch_tensor::TensorRng;
use std::process::ExitCode;

const USAGE: &str =
    "usage: mmcheck [--dump] [--no-opt] [--model resnet|mlp|yolo|mobilenet]... [ARTIFACT.mmcm]...";

/// One thing to lint: where it came from, and the compiled model if it got
/// that far.
struct Target {
    label: String,
    compiled: Result<CompiledModel, QuantError>,
}

/// Lowers and quantizes one of the known mini models. `opt` is the plan
/// optimizer knob — `--no-opt` lints the raw lowering instead.
fn fresh_model(name: &str, opt: bool) -> Result<Target, String> {
    let mut rng = TensorRng::seed_from(17);
    let compiled = match name {
        "resnet" => {
            QuantPipeline::for_device(FpgaTarget::new(FpgaDevice::XC7Z045).with_input_size(16))
                .with_plan_optimizer(opt)
                .quantize(&mut ResNet::new(
                    ResNetConfig::mini(10).with_act_bits(4),
                    &mut rng,
                ))
        }
        "yolo" => QuantPipeline::for_device(FpgaTarget::new(FpgaDevice::XC7Z020))
            .with_input_shape(&[3, 32, 32])
            .with_plan_optimizer(opt)
            .quantize(&mut YoloDetector::new(YoloConfig::mini(3), &mut rng)),
        "mobilenet" => QuantPipeline::for_device(FpgaTarget::new(FpgaDevice::XC7Z020))
            .with_input_shape(&[3, 16, 16])
            .with_plan_optimizer(opt)
            .quantize(&mut MobileNetV2::new(MobileNetConfig::mini(10), &mut rng)),
        "mlp" => {
            let mut model = Sequential::new();
            model.push(Linear::with_name("fc1", 12, 20, true, &mut rng));
            model.push(Relu::new());
            model.push(Linear::with_name("fc2", 20, 4, false, &mut rng));
            QuantPipeline::from_policy(MsqPolicy::msq_half())
                .with_plan_optimizer(opt)
                .quantize(&mut model)
        }
        other => {
            return Err(format!(
                "unknown --model {other:?} (want resnet|mlp|yolo|mobilenet)"
            ))
        }
    };
    Ok(Target {
        label: format!("model:{name}"),
        compiled,
    })
}

/// Reads and imports one artifact file.
fn artifact(path: &str) -> Result<Target, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
    Ok(Target {
        label: path.to_string(),
        compiled: import_compiled(&bytes),
    })
}

fn act_name(kind: ActKind) -> &'static str {
    match kind {
        ActKind::Relu => "relu",
        ActKind::Relu6 => "relu6",
        ActKind::LeakyRelu => "leaky-relu",
    }
}

/// `+relu+requant` — the fused epilogue as a compact suffix.
fn epilogue_suffix(epilogue: &Epilogue) -> String {
    epilogue
        .iter()
        .map(|op| match op {
            PostOp::Activation(kind) => format!("+{}", act_name(kind)),
            PostOp::Requantize => "+requant".to_string(),
        })
        .collect()
}

fn op_name(op: &StepOp) -> String {
    match op {
        StepOp::Conv { layer } => format!("conv(layer {layer})"),
        StepOp::Gemm { layer } => format!("gemm(layer {layer})"),
        StepOp::FusedConv { layer, epilogue } => {
            format!("fused-conv(layer {layer}{})", epilogue_suffix(epilogue))
        }
        StepOp::FusedGemm { layer, epilogue } => {
            format!("fused-gemm(layer {layer}{})", epilogue_suffix(epilogue))
        }
        StepOp::Pool(PoolKind::GlobalAvg) => "pool(global-avg)".to_string(),
        StepOp::Pool(PoolKind::Max { window }) => format!("pool(max {window}x{window})"),
        StepOp::Pool(PoolKind::Avg { window }) => format!("pool(avg {window}x{window})"),
        StepOp::Activation(kind) => format!("act({})", act_name(*kind)),
        StepOp::ResidualAdd => "residual-add".to_string(),
        StepOp::Flatten => "flatten".to_string(),
        StepOp::Requantize => "requantize".to_string(),
    }
}

fn dims_str(dims: &[usize]) -> String {
    let parts: Vec<String> = dims.iter().map(|d| d.to_string()).collect();
    format!("[{}]", parts.join("x"))
}

/// `--dump`: the whole plan, step by step, plus the buffer table.
fn dump_plan(plan: &ExecutionPlan) {
    println!(
        "  input  {} @ b{}   output {} @ b{}",
        dims_str(plan.input_dims()),
        plan.input_buffer(),
        dims_str(plan.output_dims()),
        plan.output_buffer()
    );
    for (i, step) in plan.steps().iter().enumerate() {
        let srcs: Vec<String> = step.srcs.iter().map(|b| format!("b{b}")).collect();
        println!(
            "  #{i:<3} {:<34} {} -> b{} {}",
            op_name(&step.op),
            srcs.join("+"),
            step.dst,
            dims_str(&step.dims)
        );
    }
    let sizes: Vec<String> = plan
        .buffer_sizes()
        .iter()
        .enumerate()
        .map(|(b, n)| format!("b{b}={n}"))
        .collect();
    println!(
        "  buffers {} — high water {} elems",
        sizes.join(" "),
        plan.buffer_sizes().iter().sum::<usize>()
    );
}

/// Lints one target, printing its verdict. Returns whether it is clean.
fn lint(target: &Target, dump: bool) -> bool {
    match &target.compiled {
        Ok(compiled) => {
            let plan = match compiled.plan() {
                Some(plan) => plan,
                None => {
                    println!("{}: FAIL — carries no execution plan", target.label);
                    return false;
                }
            };
            let report = verify::verify(plan, &compiled.layer_descs());
            if report.is_clean() {
                println!(
                    "{}: ok — {} steps, {} buffers, 0 diagnostics",
                    target.label,
                    plan.steps().len(),
                    plan.buffer_count()
                );
                if dump {
                    dump_plan(plan);
                }
                true
            } else {
                println!("{}: FAIL — {}", target.label, report);
                if dump {
                    dump_plan(plan);
                }
                false
            }
        }
        // import_compiled already verifies; surface its verifier report the
        // same structured way, and byte-level corruption as a parse error.
        Err(QuantError::Verify { report }) => {
            println!("{}: FAIL — {}", target.label, report);
            false
        }
        Err(e) => {
            println!("{}: FAIL — artifact rejected: {e}", target.label);
            false
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    // Mode flags apply to the whole run, wherever they appear.
    let dump = args.iter().any(|a| a == "--dump");
    let opt = !args.iter().any(|a| a == "--no-opt");
    let mut targets = Vec::new();
    let mut it = args.iter().filter(|a| *a != "--dump" && *a != "--no-opt");
    while let Some(arg) = it.next() {
        let built = if arg == "--model" {
            match it.next() {
                Some(name) => fresh_model(name, opt),
                None => Err("--model needs a name".to_string()),
            }
        } else if arg.starts_with('-') {
            Err(format!("unknown flag {arg:?}"))
        } else {
            artifact(arg)
        };
        match built {
            Ok(target) => targets.push(target),
            Err(e) => {
                eprintln!("mmcheck: {e}");
                eprintln!("{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    if targets.is_empty() {
        eprintln!("mmcheck: nothing to lint");
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }
    let clean = targets
        .iter()
        .map(|t| lint(t, dump))
        .filter(|&ok| ok)
        .count();
    println!("mmcheck: {clean}/{} targets verify clean", targets.len());
    if clean == targets.len() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
