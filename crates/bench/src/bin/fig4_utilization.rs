//! Figure 4: FPGA resource utilization for the six designs (full bitstream,
//! shell included), with DSP pegged at 100%.

use mixmatch_fpga::arch::AcceleratorConfig;
use mixmatch_fpga::cost::CostModel;
use mixmatch_fpga::report::{fmt_pct, TextTable};

fn main() {
    println!("=== Figure 4: resource utilization by design ===\n");
    // Paper bars: (LUT, FF, BRAM, DSP) percentages.
    let paper = [
        (46, 15, 35, 100),
        (66, 20, 42, 100),
        (77, 22, 47, 100),
        (24, 8, 31, 100),
        (48, 16, 37, 100),
        (72, 27, 43, 100),
    ];
    let mut t = TextTable::new(vec![
        "design",
        "LUT",
        "FF",
        "BRAM36",
        "DSP",
        "paper (LUT/FF/BRAM/DSP)",
    ]);
    for ((name, cfg), (pl, pf, pb, pd)) in AcceleratorConfig::table7_designs().iter().zip(paper) {
        let model = CostModel::for_device(&cfg.device);
        let u = model.usage_with_shell(cfg).utilization(&cfg.device);
        t.row(vec![
            name.to_string(),
            fmt_pct(u.lut),
            fmt_pct(u.ff),
            fmt_pct(u.bram36),
            fmt_pct(u.dsp),
            format!("{pl}%/{pf}%/{pb}%/{pd}%"),
        ]);
    }
    println!("{}", t.render());
    println!("Shape check: DSP held at 100% in every design while the SP2 core raises");
    println!("LUT utilization towards the 70-80% ceiling (paper §VI-B1).");
}
