//! Serving-throughput benchmark: batched integer inference through
//! `BatchEngine` at batch 1/8/32 — the per-layer series (`forward_batch`
//! over a `ModelBatch`, kept for trend continuity) next to the end-to-end
//! series (`run_plan_batch`: raw images → logits through the compiled
//! `ExecutionPlan`), each beside the cycle simulator's batched GOPS/fps
//! prediction — the software counterpart of Table VIII's throughput
//! columns, opened up to serving workloads.
//!
//! Writes `BENCH_throughput.json` into the working directory. Pass
//! `--smoke` for a CI-sized run.

use mixmatch_fpga::bridge::FpgaTarget;
use mixmatch_fpga::device::FpgaDevice;
use mixmatch_nn::models::{ResNet, ResNetConfig};
use mixmatch_quant::engine::{BatchEngine, ModelBatch};
use mixmatch_quant::integer::{ActQuantizer, QuantizedMatrix};
use mixmatch_quant::msq::MsqPolicy;
use mixmatch_quant::optimize;
use mixmatch_quant::pipeline::{CompiledModel, DeployForm, QuantizedModel};
use mixmatch_tensor::im2col::{im2col_patches_into, ConvGeometry};
use mixmatch_tensor::simd::{detected_tier, SimdTier};
use mixmatch_tensor::{Tensor, TensorRng};
use std::fmt::Write as _;
use std::time::Instant;

/// Repeats `pass` until `min_secs` of wall clock have elapsed (at least
/// twice), returning `(iterations, seconds)`.
fn time_passes(mut pass: impl FnMut(), min_secs: f64) -> (usize, f64) {
    let start = Instant::now();
    let mut iters = 0usize;
    loop {
        pass();
        iters += 1;
        let secs = start.elapsed().as_secs_f64();
        if iters >= 2 && secs >= min_secs {
            return (iters, secs);
        }
    }
}

/// One model pass over a batch through the interpreted single-image kernels
/// (`try_forward_image` / `matvec`) — the pre-engine baseline. Shape
/// errors surface as a report instead of a panic.
fn single_path_pass(model: &QuantizedModel, batch: &ModelBatch) -> Result<(), String> {
    let act = *model.act_quantizer();
    for (layer, inputs) in model.layers().iter().zip(&batch.inputs) {
        for input in inputs {
            match &layer.form {
                DeployForm::Conv(conv) => {
                    conv.try_forward_image(input)
                        .map_err(|e| format!("layer {}: {e}", layer.desc.name))?;
                }
                DeployForm::Matrix(matrix) => {
                    let _ = matrix.matvec(&act.quantize(input.as_slice()), &act);
                }
            }
        }
    }
    Ok(())
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (input_hw, min_secs) = if smoke { (8, 0.05) } else { (16, 0.4) };
    let device = FpgaDevice::XC7Z045;
    let mut rng = TensorRng::seed_from(7);
    let mut model = ResNet::new(ResNetConfig::mini(10).with_act_bits(4), &mut rng);
    let quantized: CompiledModel = mixmatch_quant::pipeline::QuantPipeline::for_device(
        FpgaTarget::new(device).with_input_size(input_hw),
    )
    .quantize(&mut model)
    .expect("quantize resnet-mini");
    let plan = quantized.plan().expect("resnet compiles to a plan");
    let engine = BatchEngine::new();
    println!(
        "=== Batched integer inference throughput (resnet18-mini, {} layers, {} plan steps, {} worker threads) ===\n",
        quantized.layers().len(),
        plan.steps().len(),
        engine.threads()
    );

    // Pre-engine baseline: the interpreted single-image path at batch 1.
    let base_batch = ModelBatch::sample(&quantized, input_hw, 1, &mut rng);
    if let Err(e) = single_path_pass(&quantized, &base_batch) {
        eprintln!("single-image baseline failed: {e}");
        std::process::exit(1);
    }
    let (iters, secs) = time_passes(
        || {
            single_path_pass(&quantized, &base_batch).expect("validated above");
        },
        min_secs,
    );
    let single_path_ips = iters as f64 / secs;
    println!("single-image path (no engine):   {single_path_ips:9.1} images/sec");

    // Kernel series: the raw im2col → quantize → GEMM chain on one thread,
    // the scalar tier against the runtime-detected vector tier of the
    // *same* lane-planned `GemmPlan` — isolating the packed-weight
    // micro-kernels from engine dispatch and the rest of the model.
    let kgeom = ConvGeometry::new(32, 64, 3, 1, 1);
    let kernel_act = ActQuantizer::new(4, 1.0);
    let kw = Tensor::randn(&[kgeom.out_channels, kgeom.gemm_k()], &mut rng);
    let kq = QuantizedMatrix::from_float(&kw, &MsqPolicy::msq_optimal());
    let kernel_base = kq.try_plan().expect("kernel fixture plan");
    kernel_base
        .check_act(&kernel_act)
        .expect("4-bit numerators stay inside the accumulator bound");
    let kk = kgeom.gemm_k();
    let patches = kgeom.output_size(input_hw) * kgeom.output_size(input_hw);
    // Same L1-sized patch tiling the engine uses for its conv chain.
    let tile = {
        let raw = (64 * 1024 / (8 * kk)).clamp(4, 4096);
        (raw - raw % 4).min(patches.max(4))
    };
    let kernel_images: Vec<Tensor> = (0..32)
        .map(|_| Tensor::rand_uniform(&[kgeom.in_channels, input_hw, input_hw], 0.0, 1.0, &mut rng))
        .collect();
    let tier_name = |t: SimdTier| match t {
        SimdTier::Scalar => "scalar",
        SimdTier::Avx2 => "avx2",
    };
    let mut kernel_rows = String::new();
    let mut kernel_at_32 = [0f64; 2];
    println!(
        "\nkernel chain (conv {}x{}x{} s{} p{}, K={kk}, {patches} patches, 1 thread):",
        kgeom.out_channels, kgeom.in_channels, kgeom.kernel, kgeom.stride, kgeom.padding
    );
    for (ti, tier) in [SimdTier::Scalar, detected_tier()].into_iter().enumerate() {
        let plan = kernel_base.clone().with_tier(tier);
        let mut cols = vec![0.0f32; tile * kk];
        let mut quantized: Vec<u32> = Vec::new();
        let mut out = vec![0.0f32; kgeom.out_channels * patches];
        let mut batch_rows = String::new();
        for (bi, &batch) in [1usize, 8, 32].iter().enumerate() {
            let (iters, secs) = time_passes(
                || {
                    for img in &kernel_images[..batch] {
                        let mut p0 = 0;
                        while p0 < patches {
                            let count = tile.min(patches - p0);
                            im2col_patches_into(img, &kgeom, 0, p0, count, &mut cols);
                            kernel_act.quantize_into(&cols[..count * kk], &mut quantized);
                            plan.matmul_patches_into(
                                &quantized,
                                count,
                                &kernel_act,
                                &mut out,
                                patches,
                                p0,
                                None,
                            );
                            p0 += count;
                        }
                    }
                },
                min_secs,
            );
            let ips = (batch * iters) as f64 / secs;
            if bi == 2 {
                kernel_at_32[ti] = ips;
            }
            println!(
                "  {:<6} batch {batch:>2}: {ips:9.1} images/sec",
                tier_name(tier)
            );
            let _ = write!(
                batch_rows,
                r#"{}        {{"batch": {batch}, "images_per_sec": {ips:.1}}}"#,
                if batch_rows.is_empty() { "" } else { ",\n" },
            );
        }
        let _ = write!(
            kernel_rows,
            "{}      {{\"tier\": \"{}\", \"batches\": [\n{batch_rows}\n      ]}}",
            if kernel_rows.is_empty() { "" } else { ",\n" },
            tier_name(tier),
        );
    }
    let kernel_speedup = if kernel_at_32[0] > 0.0 {
        kernel_at_32[1] / kernel_at_32[0]
    } else {
        0.0
    };
    println!(
        "  simd vs scalar @ batch 32: {kernel_speedup:.2}x ({})",
        tier_name(detected_tier())
    );

    // Per-layer series: every layer fed its own synthetic batch (the
    // pre-plan serving mode, kept for trend continuity).
    let mut rows = String::new();
    let mut measured = Vec::new();
    for &batch in &[1usize, 8, 32] {
        let model_batch = ModelBatch::sample(&quantized, input_hw, batch, &mut rng);
        engine
            .forward_batch(&quantized, &model_batch)
            .expect("warmup pass");
        let (iters, secs) = time_passes(
            || {
                engine
                    .forward_batch(&quantized, &model_batch)
                    .expect("timed pass");
            },
            min_secs,
        );
        let ips = (batch * iters) as f64 / secs;
        measured.push((batch, ips));
        let run = engine
            .forward_batch(&quantized, &model_batch)
            .expect("census pass");
        let sim = quantized
            .summarize_batched(batch)
            .expect("fpga target anchors the pipeline");
        let sim_ips = batch as f64 * 1_000.0 / sim.latency_ms as f64;
        println!(
            "per-layer batch {batch:>2}:   {ips:9.1} images/sec measured | sim {:7.1} GOPS, {sim_ips:9.1} images/sec",
            sim.gops
        );
        let _ = write!(
            rows,
            r#"{}    {{"batch": {batch}, "images_per_sec": {ips:.1}, "ops": {{"mults": {}, "shifts": {}, "adds": {}}}, "sim_gops": {:.2}, "sim_latency_ms": {:.4}, "sim_images_per_sec": {sim_ips:.1}}}"#,
            if rows.is_empty() { "" } else { ",\n" },
            run.ops.mults,
            run.ops.shifts,
            run.ops.adds,
            sim.gops,
            sim.latency_ms,
        );
    }

    // Plan-optimizer series: the same model run through the raw lowering
    // (`QuantizedModel::compile` never optimizes) and through the
    // pipeline's optimized plan, plus the per-pass step/arena trajectory.
    let raw_plan = quantized
        .model()
        .compile(&[3, input_hw, input_hw])
        .expect("raw compile");
    let (_, pass_stats) = optimize::optimize_with_stats(&raw_plan);
    let mut pass_rows = String::new();
    println!(
        "\nplan optimizer:      raw {:>3} steps, {:>7} arena bytes",
        raw_plan.steps().len(),
        4 * optimize::high_water_elems(&raw_plan)
    );
    for s in &pass_stats {
        println!(
            "  after {:<22} {:>3} steps, {:>7} arena bytes",
            s.pass,
            s.plan_steps,
            4 * s.high_water_elems
        );
        let _ = write!(
            pass_rows,
            r#"{}      {{"pass": "{}", "plan_steps": {}, "arena_high_water_bytes": {}}}"#,
            if pass_rows.is_empty() { "" } else { ",\n" },
            s.pass,
            s.plan_steps,
            4 * s.high_water_elems,
        );
    }

    // A GEMM-dominated fixture where step overhead is a real fraction of
    // the forward pass: fusing the MLP's activation into its GEMM drops a
    // third of the steps, so the win is visible above conv noise.
    let mut mlp = mixmatch_nn::module::Sequential::new();
    let mut mlp_rng = TensorRng::seed_from(9);
    mlp.push(mixmatch_nn::layers::Linear::with_name(
        "fc1",
        64,
        128,
        true,
        &mut mlp_rng,
    ));
    mlp.push(mixmatch_nn::layers::Relu::new());
    mlp.push(mixmatch_nn::layers::Linear::with_name(
        "fc2",
        128,
        10,
        false,
        &mut mlp_rng,
    ));
    let mlp_compiled = mixmatch_quant::pipeline::QuantPipeline::from_policy(
        mixmatch_quant::msq::MsqPolicy::msq_half(),
    )
    .with_input_shape(&[64])
    .quantize(&mut mlp)
    .expect("quantize mlp");
    let mlp_raw = mlp_compiled
        .model()
        .compile(&[64])
        .expect("raw mlp compile");
    let mlp_opt = mlp_compiled.plan().expect("optimized mlp plan");
    let mut mlp_rows = String::new();
    for &batch in &[1usize, 8, 32] {
        let vecs: Vec<Tensor> = (0..batch)
            .map(|_| Tensor::rand_uniform(&[64], 0.0, 1.0, &mut mlp_rng))
            .collect();
        let time_plan = |plan| {
            engine
                .run_plan(mlp_compiled.model(), plan, &vecs)
                .expect("mlp warmup");
            let (iters, secs) = time_passes(
                || {
                    engine
                        .run_plan(mlp_compiled.model(), plan, &vecs)
                        .expect("mlp timed pass");
                },
                min_secs,
            );
            (batch * iters) as f64 / secs
        };
        let off = time_plan(&mlp_raw);
        let on = time_plan(mlp_opt);
        println!(
            "optimizer mlp batch {batch:>2}: {off:9.1} images/sec off | {on:9.1} images/sec on ({:.2}x)",
            if off > 0.0 { on / off } else { 0.0 }
        );
        let _ = write!(
            mlp_rows,
            r#"{}      {{"batch": {batch}, "images_per_sec_opt_off": {off:.1}, "images_per_sec_opt_on": {on:.1}, "speedup": {:.3}}}"#,
            if mlp_rows.is_empty() { "" } else { ",\n" },
            if off > 0.0 { on / off } else { 0.0 },
        );
    }

    // End-to-end series: raw images → logits through the compiled plan —
    // one artifact drives the engine and the plan-scheduled cycle sim.
    // Each batch is timed twice: optimizer off (the raw plan) and on (the
    // pipeline's plan), so the JSON carries the measured fusion win.
    let mut e2e_rows = String::new();
    let mut e2e_measured = Vec::new();
    let mut opt_rows = String::new();
    for &batch in &[1usize, 8, 32] {
        let images: Vec<Tensor> = (0..batch)
            .map(|_| Tensor::rand_uniform(&[3, input_hw, input_hw], 0.0, 1.0, &mut rng))
            .collect();
        engine
            .run_plan(quantized.model(), &raw_plan, &images)
            .expect("raw warmup pass");
        let (raw_iters, raw_secs) = time_passes(
            || {
                engine
                    .run_plan(quantized.model(), &raw_plan, &images)
                    .expect("raw timed pass");
            },
            min_secs,
        );
        let raw_ips = (batch * raw_iters) as f64 / raw_secs;
        engine
            .run_plan_batch(&quantized, &images)
            .expect("warmup pass");
        let (iters, secs) = time_passes(
            || {
                engine
                    .run_plan_batch(&quantized, &images)
                    .expect("timed pass");
            },
            min_secs,
        );
        let ips = (batch * iters) as f64 / secs;
        e2e_measured.push((batch, ips));
        println!(
            "optimizer batch {batch:>2}:  {raw_ips:9.1} images/sec off | {ips:9.1} images/sec on ({:.2}x)",
            if raw_ips > 0.0 { ips / raw_ips } else { 0.0 }
        );
        let _ = write!(
            opt_rows,
            r#"{}      {{"batch": {batch}, "images_per_sec_opt_off": {raw_ips:.1}, "images_per_sec_opt_on": {ips:.1}, "speedup": {:.3}}}"#,
            if opt_rows.is_empty() { "" } else { ",\n" },
            if raw_ips > 0.0 { ips / raw_ips } else { 0.0 },
        );
        let run = engine
            .run_plan_batch(&quantized, &images)
            .expect("census pass");
        let sim = quantized
            .summarize_batched(batch)
            .expect("plan-scheduled summary");
        let sim_ips = batch as f64 * 1_000.0 / sim.latency_ms as f64;
        println!(
            "end-to-end batch {batch:>2}: {ips:9.1} images/sec measured | sim {:7.1} GOPS, {sim_ips:9.1} images/sec",
            sim.gops
        );
        let _ = write!(
            e2e_rows,
            r#"{}    {{"batch": {batch}, "images_per_sec": {ips:.1}, "ops": {{"mults": {}, "shifts": {}, "adds": {}}}, "sim_gops": {:.2}, "sim_latency_ms": {:.4}, "sim_images_per_sec": {sim_ips:.1}}}"#,
            if e2e_rows.is_empty() { "" } else { ",\n" },
            run.ops.mults,
            run.ops.shifts,
            run.ops.adds,
            sim.gops,
            sim.latency_ms,
        );
    }

    // Profiled series: the same optimized plan at batch 32 through
    // `run_plan_profiled` — per-step wall time, bytes moved and kernel
    // tier, next to the cycle simulator's per-step prediction. This is the
    // measured-vs-predicted table the auto-tuner will search against.
    let profile_images: Vec<Tensor> = (0..32)
        .map(|_| Tensor::rand_uniform(&[3, input_hw, input_hw], 0.0, 1.0, &mut rng))
        .collect();
    let (_, profile) = engine
        .run_plan_profiled(quantized.model(), plan, &profile_images)
        .expect("profiled pass");
    println!("\n{profile}");
    let mut profile_rows = String::new();
    for step in &profile.steps {
        let _ = write!(
            profile_rows,
            r#"{}      {{"index": {}, "label": "{}", "us_per_image": {:.3}, "bytes_moved": {}, "tier": {}, "packed_rows": {}, "dense_rows": {}, "predicted_us_per_image": {}}}"#,
            if profile_rows.is_empty() { "" } else { ",\n" },
            step.index,
            step.label,
            step.measured_us_per_image(profile.images),
            step.bytes_moved,
            step.tier
                .as_deref()
                .map_or("null".to_string(), |t| format!("\"{t}\"")),
            step.packed_rows,
            step.dense_rows,
            step.predicted.map_or("null".to_string(), |p| format!(
                "{:.3}",
                p.as_secs_f64() * 1e6
            )),
        );
    }

    let speedup_of = |series: &[(usize, f64)]| {
        let at = |b: usize| {
            series
                .iter()
                .find(|(bb, _)| *bb == b)
                .map_or(0.0, |(_, i)| *i)
        };
        if at(1) > 0.0 {
            at(32) / at(1)
        } else {
            0.0
        }
    };
    let speedup = speedup_of(&measured);
    let e2e_speedup = speedup_of(&e2e_measured);
    println!(
        "\nbatch-32 vs batch-1 speedup: per-layer {speedup:.2}x, end-to-end {e2e_speedup:.2}x"
    );

    let json = format!(
        r#"{{
  "bench": "throughput",
  "model": "resnet18-mini",
  "device": "{}",
  "input_hw": {input_hw},
  "threads": {},
  "host": {{"os": "{}", "arch": "{}", "parallelism": {}}},
  "plan_steps": {},
  "smoke": {smoke},
  "single_path_images_per_sec": {single_path_ips:.1},
  "kernel": {{
    "geometry": {{"in_channels": {}, "out_channels": {}, "kernel": {}, "input_hw": {input_hw}, "gemm_k": {kk}, "patches": {patches}, "tile_patches": {tile}}},
    "act_bits": {},
    "detected_tier": "{}",
    "threads": 1,
    "series": [
{kernel_rows}
    ],
    "simd_vs_scalar_batch32": {kernel_speedup:.2}
  }},
  "batches": [
{rows}
  ],
  "end_to_end_images_per_sec": [
{e2e_rows}
  ],
  "plan_profile": {{
    "batch": 32,
    "total_ms": {:.3},
    "arena_high_water_bytes": {},
    "steps": [
{profile_rows}
    ]
  }},
  "plan_optimizer": {{
    "raw": {{"plan_steps": {}, "arena_high_water_bytes": {}}},
    "passes": [
{pass_rows}
    ],
    "end_to_end": [
{opt_rows}
    ],
    "mlp_end_to_end": [
{mlp_rows}
    ]
  }},
  "speedup_batch32_vs_batch1": {speedup:.2},
  "end_to_end_speedup_batch32_vs_batch1": {e2e_speedup:.2}
}}
"#,
        device.name,
        engine.threads(),
        std::env::consts::OS,
        std::env::consts::ARCH,
        std::thread::available_parallelism().map_or(1, |v| v.get()),
        plan.steps().len(),
        kgeom.in_channels,
        kgeom.out_channels,
        kgeom.kernel,
        kernel_act.bits,
        tier_name(detected_tier()),
        profile.total.as_secs_f64() * 1e3,
        profile.arena_high_water_bytes,
        raw_plan.steps().len(),
        4 * optimize::high_water_elems(&raw_plan),
    );
    std::fs::write("BENCH_throughput.json", &json).expect("write BENCH_throughput.json");
    println!("wrote BENCH_throughput.json");
}
