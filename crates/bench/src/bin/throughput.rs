//! Serving-throughput benchmark: batched integer inference through
//! `BatchEngine` at batch 1/8/32, measured wall-clock images/sec next to the
//! cycle simulator's batched GOPS/fps prediction — the software counterpart
//! of Table VIII's throughput columns, opened up to serving workloads.
//!
//! Writes `BENCH_throughput.json` into the working directory. Pass
//! `--smoke` for a CI-sized run.

use mixmatch_fpga::bridge::FpgaTarget;
use mixmatch_fpga::device::FpgaDevice;
use mixmatch_nn::models::{ResNet, ResNetConfig};
use mixmatch_quant::engine::{BatchEngine, ModelBatch};
use mixmatch_quant::pipeline::{DeployForm, QuantPipeline, QuantizedModel};
use mixmatch_tensor::TensorRng;
use std::fmt::Write as _;
use std::time::Instant;

/// Repeats `pass` until `min_secs` of wall clock have elapsed (at least
/// twice), returning `(iterations, seconds)`.
fn time_passes(mut pass: impl FnMut(), min_secs: f64) -> (usize, f64) {
    let start = Instant::now();
    let mut iters = 0usize;
    loop {
        pass();
        iters += 1;
        let secs = start.elapsed().as_secs_f64();
        if iters >= 2 && secs >= min_secs {
            return (iters, secs);
        }
    }
}

/// One model pass over a batch through the interpreted single-image kernels
/// (`forward_image` / `matvec`) — the pre-engine baseline.
fn single_path_pass(model: &QuantizedModel, batch: &ModelBatch) {
    let act = *model.act_quantizer();
    for (layer, inputs) in model.layers().iter().zip(&batch.inputs) {
        for input in inputs {
            match &layer.form {
                DeployForm::Conv(conv) => {
                    let _ = conv.forward_image(input);
                }
                DeployForm::Matrix(matrix) => {
                    let _ = matrix.matvec(&act.quantize(input.as_slice()), &act);
                }
            }
        }
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (input_hw, min_secs) = if smoke { (8, 0.05) } else { (16, 0.4) };
    let device = FpgaDevice::XC7Z045;
    let mut rng = TensorRng::seed_from(7);
    let mut model = ResNet::new(ResNetConfig::mini(10).with_act_bits(4), &mut rng);
    let quantized = QuantPipeline::for_device(FpgaTarget::new(device).with_input_size(input_hw))
        .quantize(&mut model)
        .expect("quantize resnet-mini");
    let engine = BatchEngine::new();
    println!(
        "=== Batched integer inference throughput (resnet18-mini, {} layers, {} worker threads) ===\n",
        quantized.layers().len(),
        engine.threads()
    );

    // Pre-engine baseline: the interpreted single-image path at batch 1.
    let base_batch = ModelBatch::sample(&quantized, input_hw, 1, &mut rng);
    single_path_pass(&quantized, &base_batch); // warmup
    let (iters, secs) = time_passes(|| single_path_pass(&quantized, &base_batch), min_secs);
    let single_path_ips = iters as f64 / secs;
    println!("single-image path (no engine):   {single_path_ips:9.1} images/sec");

    let mut rows = String::new();
    let mut measured = Vec::new();
    for &batch in &[1usize, 8, 32] {
        let model_batch = ModelBatch::sample(&quantized, input_hw, batch, &mut rng);
        engine
            .forward_batch(&quantized, &model_batch)
            .expect("warmup pass");
        let (iters, secs) = time_passes(
            || {
                engine
                    .forward_batch(&quantized, &model_batch)
                    .expect("timed pass");
            },
            min_secs,
        );
        let ips = (batch * iters) as f64 / secs;
        measured.push((batch, ips));
        let run = engine
            .forward_batch(&quantized, &model_batch)
            .expect("census pass");
        let sim = quantized
            .summarize_batched(batch)
            .expect("fpga target anchors the pipeline");
        let sim_ips = batch as f64 * 1_000.0 / sim.latency_ms as f64;
        println!(
            "engine batch {batch:>2}: {ips:9.1} images/sec measured | sim {:7.1} GOPS, {sim_ips:9.1} images/sec",
            sim.gops
        );
        let _ = write!(
            rows,
            r#"{}    {{"batch": {batch}, "images_per_sec": {ips:.1}, "ops": {{"mults": {}, "shifts": {}, "adds": {}}}, "sim_gops": {:.2}, "sim_latency_ms": {:.4}, "sim_images_per_sec": {sim_ips:.1}}}"#,
            if rows.is_empty() { "" } else { ",\n" },
            run.ops.mults,
            run.ops.shifts,
            run.ops.adds,
            sim.gops,
            sim.latency_ms,
        );
    }

    let ips_1 = measured
        .iter()
        .find(|(b, _)| *b == 1)
        .map_or(0.0, |(_, i)| *i);
    let ips_32 = measured
        .iter()
        .find(|(b, _)| *b == 32)
        .map_or(0.0, |(_, i)| *i);
    let speedup = if ips_1 > 0.0 { ips_32 / ips_1 } else { 0.0 };
    println!("\nbatch-32 vs batch-1 speedup: {speedup:.2}x");

    let json = format!(
        r#"{{
  "bench": "throughput",
  "model": "resnet18-mini",
  "device": "{}",
  "input_hw": {input_hw},
  "threads": {},
  "smoke": {smoke},
  "single_path_images_per_sec": {single_path_ips:.1},
  "batches": [
{rows}
  ],
  "speedup_batch32_vs_batch1": {speedup:.2}
}}
"#,
        device.name,
        engine.threads(),
    );
    std::fs::write("BENCH_throughput.json", &json).expect("write BENCH_throughput.json");
    println!("wrote BENCH_throughput.json");
}
