//! Ablation (not in the paper): does Algorithm 2's variance-ranked row
//! assignment actually beat alternatives at equal SP2:fixed ratio?
//!
//! Compares quantization MSE on trained CNN weights for: variance ranking
//! (the paper), random assignment, kurtosis ranking, and an oracle that
//! picks per-row the scheme with the lower error under the shared group α.

use mixmatch_bench::harness::RunMode;
use mixmatch_data::{BatchIter, ImageDataset, SynthImageConfig};
use mixmatch_fpga::report::TextTable;
use mixmatch_nn::models::{ResNet, ResNetConfig};
use mixmatch_nn::module::Layer;
use mixmatch_quant::msq::project_rowwise;
use mixmatch_quant::qat::{train_classifier, QatConfig};
use mixmatch_quant::rowwise::{
    assign_by_kurtosis, assign_by_variance, assign_random, PartitionRatio, RowAssignment,
};
use mixmatch_quant::schemes::Scheme;
use mixmatch_tensor::{Tensor, TensorRng};

/// Total quantization MSE of a matrix under an assignment.
fn total_mse(w: &Tensor, assignment: &RowAssignment) -> f64 {
    let (_, info) = project_rowwise(w, assignment, 4);
    info.iter().map(|i| i.mse as f64).sum()
}

/// Greedy oracle: start from all-fixed and flip to SP2 the rows that gain
/// most, until the ratio is met.
fn assign_oracle(w: &Tensor, ratio: PartitionRatio) -> RowAssignment {
    let rows = w.dims()[0];
    let n_sp2 = ratio.sp2_rows(rows);
    // Score each row by (fixed error - sp2 error) under candidate group α
    // approximated per-row; highest gain flips first.
    let mut gains: Vec<(usize, f32)> = (0..rows)
        .map(|r| {
            let errs = mixmatch_quant::analysis::scheme_errors(w.row(r), 4);
            (r, errs.fixed - errs.sp2)
        })
        .collect();
    gains.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    let mut schemes = vec![Scheme::Fixed; rows];
    for &(r, _) in gains.iter().take(n_sp2) {
        schemes[r] = Scheme::Sp2;
    }
    RowAssignment::from_schemes(schemes)
}

fn main() {
    let mode = RunMode::from_args();
    println!("=== Ablation: row-assignment strategy at fixed SP2 ratio (1:2) ===\n");
    // Train a small ResNet so weights have realistic structure.
    let cfg = mode.shrink_dataset(SynthImageConfig::cifar10_like());
    let ds = ImageDataset::generate(&cfg);
    let mut rng = TensorRng::seed_from(31);
    let mut model = ResNet::new(ResNetConfig::mini(cfg.classes), &mut rng);
    let mut data_rng = rng.fork();
    let _ = train_classifier(
        &mut model,
        |_| {
            BatchIter::shuffled(ds.train_len(), 32, false, &mut data_rng)
                .map(|idx| ds.train_batch(&idx))
                .collect()
        },
        &QatConfig::float_baseline(mode.epochs(8), 0.05),
    );
    let ratio = PartitionRatio::from_fixed_sp2(1.0, 2.0);
    let mut t = TextTable::new(vec![
        "layer",
        "rows",
        "variance (paper)",
        "random",
        "kurtosis",
        "greedy oracle",
    ]);
    let mut sums = [0.0f64; 4];
    let mut ab_rng = TensorRng::seed_from(99);
    for p in model.params() {
        if !p.name().ends_with(".weight") || p.value.shape().rank() != 2 {
            continue;
        }
        let w = &p.value;
        let mse = [
            total_mse(w, &assign_by_variance(w, ratio)),
            total_mse(w, &assign_random(w.dims()[0], ratio, &mut ab_rng)),
            total_mse(w, &assign_by_kurtosis(w, ratio)),
            total_mse(w, &assign_oracle(w, ratio)),
        ];
        for (s, m) in sums.iter_mut().zip(mse) {
            *s += m;
        }
        t.row(vec![
            p.name().to_string(),
            w.dims()[0].to_string(),
            format!("{:.3e}", mse[0]),
            format!("{:.3e}", mse[1]),
            format!("{:.3e}", mse[2]),
            format!("{:.3e}", mse[3]),
        ]);
    }
    t.row(vec![
        "TOTAL".to_string(),
        "-".to_string(),
        format!("{:.3e}", sums[0]),
        format!("{:.3e}", sums[1]),
        format!("{:.3e}", sums[2]),
        format!("{:.3e}", sums[3]),
    ]);
    println!("{}", t.render());
    println!("Finding: on trained stand-in weights the rows are fairly homogeneous, so");
    println!("variance ranking sits within noise of random/kurtosis/oracle — scheme");
    println!("assignment is then accuracy-neutral, which is consistent with the paper's");
    println!("own Table II (MSQ ≈ Fixed ≈ SP2 on most cells).\n");

    // The regime the paper motivates: heterogeneous rows (some concentrated,
    // some spread). There the variance ranking pays off clearly.
    println!("=== Same comparison on a heterogeneous-row matrix (paper's Fig. 1 regime) ===\n");
    let mut het_rng = TensorRng::seed_from(55);
    let rows = 48;
    let cols = 256;
    let mut w = Tensor::zeros(&[rows, cols]);
    for r in 0..rows {
        for c in 0..cols {
            let v = if r % 3 == 0 {
                het_rng.uniform_in(-0.3, 0.3) // spread rows
            } else {
                het_rng.normal() * 0.04 // concentrated rows
            };
            w.set(&[r, c], v);
        }
    }
    let mut t = TextTable::new(vec!["strategy", "projection MSE"]);
    let mut ab2 = TensorRng::seed_from(77);
    t.row(vec![
        "variance (paper)".to_string(),
        format!("{:.3e}", total_mse(&w, &assign_by_variance(&w, ratio))),
    ]);
    t.row(vec![
        "random".to_string(),
        format!(
            "{:.3e}",
            total_mse(&w, &assign_random(rows, ratio, &mut ab2))
        ),
    ]);
    t.row(vec![
        "kurtosis".to_string(),
        format!("{:.3e}", total_mse(&w, &assign_by_kurtosis(&w, ratio))),
    ]);
    t.row(vec![
        "greedy oracle".to_string(),
        format!("{:.3e}", total_mse(&w, &assign_oracle(&w, ratio))),
    ]);
    println!("{}", t.render());
    println!("Here variance ranking separates the two row populations and beats random");
    println!("decisively — the case Algorithm 2 is designed for.");
}
