//! Table I: operations needed for one weight×activation multiplication under
//! fixed-point vs SP2 weight quantization — both the paper's analytical
//! costs and a measured op census from the bit-exact integer kernels.

use mixmatch_fpga::report::TextTable;
use mixmatch_quant::codes::{fixed_mac_cost, sp2_mac_cost};
use mixmatch_quant::integer::{ActQuantizer, QuantizedMatrix};
use mixmatch_quant::msq::MsqPolicy;
use mixmatch_quant::schemes::{sp2_split, Scheme};
use mixmatch_tensor::{Tensor, TensorRng};

fn main() {
    println!("=== Table I: ops for weight x activation by scheme ===\n");
    let (m, n) = (4u32, 4u32);
    let (m1, m2) = sp2_split(m);
    let f = fixed_mac_cost(m, n);
    let s = sp2_mac_cost(m, n);
    let mut t = TextTable::new(vec![
        "scheme",
        "weight operands",
        "ops per MAC (analytical)",
    ]);
    t.row(vec![
        format!("{m}-bit fixed"),
        format!("({}-bit integer)", m - 1),
        format!("{}-bit addition x{}", f.addition_width, f.additions),
    ]);
    t.row(vec![
        format!("{m}-bit SP2"),
        format!("({m1}-bit, {m2}-bit exponents)"),
        format!(
            "shift<= {}b x{}, {}-bit addition x{}",
            s.max_shift, s.shifts, s.addition_width, s.additions
        ),
    ]);
    println!("{}", t.render());

    // Measured census over a real quantized matrix.
    let mut rng = TensorRng::seed_from(0);
    let w = Tensor::randn(&[64, 128], &mut rng);
    let act = ActQuantizer::new(4, 1.0);
    let x: Vec<u32> = (0..128).map(|_| rng.below(16) as u32).collect();
    println!("measured op census for one 64x128 GEMV (8192 MACs):\n");
    let mut t = TextTable::new(vec!["weights", "DSP mults", "shifts", "adds"]);
    for (label, policy) in [
        ("all fixed", MsqPolicy::single(Scheme::Fixed, 4)),
        ("all P2", MsqPolicy::single(Scheme::Pow2, 4)),
        ("all SP2", MsqPolicy::single(Scheme::Sp2, 4)),
        ("MSQ 1:2", MsqPolicy::msq_optimal()),
    ] {
        let qm = QuantizedMatrix::from_float(&w, &policy);
        let (_, ops) = qm.matvec(&x, &act);
        t.row(vec![
            label.to_string(),
            ops.mults.to_string(),
            ops.shifts.to_string(),
            ops.adds.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!("SP2 rows consume zero DSP multipliers: every MAC is at most two");
    println!("shifts and one addition, implementable in LUTs (paper §III-A).");
}
