//! Table VIII: per-workload throughput (GOPS) under the six hardware
//! settings, with resource usage — the paper's headline 2.1x-4.1x result.

use mixmatch_fpga::bridge::FpgaTarget;
use mixmatch_fpga::device::FpgaDevice;
use mixmatch_fpga::perf::table8;
use mixmatch_fpga::report::TextTable;
use mixmatch_fpga::sim::SimParams;
use mixmatch_quant::pipeline::{HardwareTarget, QuantPipeline};

fn main() {
    println!("=== Table VIII: performance of DNN applications per hardware setting ===\n");
    let rows = table8(&SimParams::default());
    let mut t = TextTable::new(vec![
        "device",
        "ratio",
        "LUT",
        "DSP",
        "BRAM36",
        "FF",
        "ResNet-18",
        "MobileNet-v2",
        "YOLO-v3",
        "LSTM/PTB",
        "GRU/TIMIT",
        "LSTM/IMDB",
    ]);
    for row in &rows {
        let mut cells = vec![
            row.device.to_string(),
            row.ratio.clone(),
            format!("{:.0}", row.usage.lut),
            format!("{:.0}", row.usage.dsp),
            format!("{:.1}", row.usage.bram36),
            format!("{:.0}", row.usage.ff),
        ];
        cells.extend(row.gops().iter().map(|g| format!("{g:.1}")));
        t.row(cells);
    }
    println!("{}", t.render());

    println!("paper GOPS rows for comparison:");
    println!("  XC7Z020 1:0        36.0  33.0   36.6   26.1   22.6   25.0");
    println!("  XC7Z020 1:1        74.4  65.7   74.1   52.9   49.2   58.7");
    println!("  XC7Z020 1:1.5 opt  77.0  71.8   84.0   77.2   77.2   59.7");
    println!("  XC7Z045 1:0       144.7 129.6  143.6   91.3   89.6  108.0");
    println!("  XC7Z045 1:1       285.5 258.1  283.7  183.2  212.5  217.2");
    println!("  XC7Z045 1:2 opt   359.2 326.9  390.0  318.2  369.2  340.7\n");

    // Improvement factors and latency, as quoted in §VI-B2.
    println!("improvement of optimal ratio over fixed-only (paper: 2.1x-4.1x):");
    let mut t = TextTable::new(vec!["workload", "XC7Z020", "XC7Z045"]);
    let nets = [
        "ResNet-18",
        "MobileNet-v2",
        "YOLO-v3",
        "LSTM/PTB",
        "GRU/TIMIT",
        "LSTM/IMDB",
    ];
    for (i, name) in nets.iter().enumerate() {
        let z020 = rows[2].gops()[i] / rows[0].gops()[i];
        let z045 = rows[5].gops()[i] / rows[3].gops()[i];
        t.row(vec![
            name.to_string(),
            format!("{z020:.2}x"),
            format!("{z045:.2}x"),
        ]);
    }
    println!("{}", t.render());

    println!("ResNet-18 latency per image:");
    let mut t = TextTable::new(vec!["design", "latency (ours)", "latency (paper)"]);
    let paper_lat = [
        ("XC7Z020 1:0", 100.7f32),
        ("XC7Z020 1:1.5", 47.1),
        ("XC7Z045 1:0", 25.1),
        ("XC7Z045 1:2", 10.1),
    ];
    for ((label, paper), row_idx) in paper_lat.iter().zip([0usize, 2, 3, 5]) {
        t.row(vec![
            label.to_string(),
            format!("{:.1} ms", rows[row_idx].perfs[0].latency_ms()),
            format!("{paper:.1} ms"),
        ]);
    }
    println!("{}", t.render());

    // The same optima, derived through the pipeline bridge: what
    // `QuantPipeline::for_device(device)` hands to quantization training.
    println!("pipeline-derived policies (QuantPipeline::for_device):");
    for device in [FpgaDevice::XC7Z020, FpgaDevice::XC7Z045] {
        let target = FpgaTarget::new(device);
        let policy = *QuantPipeline::for_device(target.clone()).policy();
        println!(
            "  {:<12} -> {:?}",
            HardwareTarget::label(&target),
            policy.choice
        );
    }
    println!();

    println!("PE utilization (paper: CNN 52.4-70.1%, RNN 42.9-59.2%):");
    let mut t = TextTable::new(vec![
        "design",
        "ResNet",
        "MobileNet",
        "YOLO",
        "PTB",
        "TIMIT",
        "IMDB",
    ]);
    for (row, (name, _)) in rows.iter().zip([
        ("D1-1", 0),
        ("D1-2", 0),
        ("D1-3", 0),
        ("D2-1", 0),
        ("D2-2", 0),
        ("D2-3", 0),
    ]) {
        let mut cells = vec![format!("{} {}", name, row.ratio)];
        cells.extend(
            row.perfs
                .iter()
                .map(|p| format!("{:.1}%", p.pe_utilization() * 100.0)),
        );
        t.row(cells);
    }
    println!("{}", t.render());
}
