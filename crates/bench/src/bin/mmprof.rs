//! `mmprof` — the plan profiler: runs a profiled batch through
//! `BatchEngine::run_plan_profiled` and reports where the time went, step
//! by step, next to the cycle simulator's prediction when the model is
//! anchored to a hardware target.
//!
//! ```text
//! mmprof --smoke                    # CI-sized resnet run
//! mmprof --model resnet --batch 32  # fresh lowering, bigger batch
//! mmprof model.mmcm                 # profile a shipped artifact
//! mmprof --trace out.json ...       # chrome://tracing output path
//! ```
//!
//! The run enables the tracing recorder, so alongside the flat per-step
//! profile it writes a chrome://tracing file (default `BENCH_trace.json`)
//! covering the engine's chunk fan-out and the pool's task spans — open it
//! at `chrome://tracing` or `ui.perfetto.dev`. Stdout carries the
//! [`PlanProfile`] table (measured µs/image, bytes moved, kernel tier,
//! packed/dense row split, predicted µs and skew) plus the kernel-tier
//! row counters from the global metrics registry. Exit status: 0 on
//! success, 2 on usage or I/O errors.
//!
//! [`PlanProfile`]: mixmatch_quant::profile::PlanProfile

use mixmatch_fpga::bridge::FpgaTarget;
use mixmatch_fpga::device::FpgaDevice;
use mixmatch_nn::layers::{Linear, Relu};
use mixmatch_nn::models::{
    MobileNetConfig, MobileNetV2, ResNet, ResNetConfig, YoloConfig, YoloDetector,
};
use mixmatch_nn::module::Sequential;
use mixmatch_quant::engine::BatchEngine;
use mixmatch_quant::export::import_compiled;
use mixmatch_quant::msq::MsqPolicy;
use mixmatch_quant::pipeline::{CompiledModel, QuantPipeline};
use mixmatch_tensor::{Tensor, TensorRng};
use std::process::ExitCode;

const USAGE: &str =
    "usage: mmprof [--smoke] [--batch N] [--trace FILE] [--model resnet|mlp|yolo|mobilenet] [ARTIFACT.mmcm]";

/// Lowers and quantizes one of the known mini models (the same catalog
/// `mmcheck --model` accepts).
fn fresh_model(name: &str, input_hw: usize) -> Result<CompiledModel, String> {
    let mut rng = TensorRng::seed_from(17);
    let compiled = match name {
        "resnet" => QuantPipeline::for_device(
            FpgaTarget::new(FpgaDevice::XC7Z045).with_input_size(input_hw),
        )
        .quantize(&mut ResNet::new(
            ResNetConfig::mini(10).with_act_bits(4),
            &mut rng,
        )),
        "yolo" => QuantPipeline::for_device(FpgaTarget::new(FpgaDevice::XC7Z020))
            .with_input_shape(&[3, 32, 32])
            .quantize(&mut YoloDetector::new(YoloConfig::mini(3), &mut rng)),
        "mobilenet" => QuantPipeline::for_device(FpgaTarget::new(FpgaDevice::XC7Z020))
            .with_input_shape(&[3, 16, 16])
            .quantize(&mut MobileNetV2::new(MobileNetConfig::mini(10), &mut rng)),
        "mlp" => {
            let mut model = Sequential::new();
            model.push(Linear::with_name("fc1", 12, 20, true, &mut rng));
            model.push(Relu::new());
            model.push(Linear::with_name("fc2", 20, 4, false, &mut rng));
            QuantPipeline::from_policy(MsqPolicy::msq_half()).quantize(&mut model)
        }
        other => {
            return Err(format!(
                "unknown --model {other:?} (want resnet|mlp|yolo|mobilenet)"
            ))
        }
    };
    compiled.map_err(|e| format!("model {name:?} failed to quantize: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let smoke = args.iter().any(|a| a == "--smoke");
    let mut batch = if smoke { 8usize } else { 32 };
    let mut trace_path = "BENCH_trace.json".to_string();
    let mut model_name: Option<String> = None;
    let mut artifact_path: Option<String> = None;
    let mut it = args.iter().filter(|a| *a != "--smoke");
    while let Some(arg) = it.next() {
        let fail = |msg: String| {
            eprintln!("mmprof: {msg}");
            eprintln!("{USAGE}");
        };
        match arg.as_str() {
            "--batch" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n > 0 => batch = n,
                _ => {
                    fail("--batch needs a positive integer".to_string());
                    return ExitCode::from(2);
                }
            },
            "--trace" => match it.next() {
                Some(path) => trace_path = path.clone(),
                None => {
                    fail("--trace needs a file path".to_string());
                    return ExitCode::from(2);
                }
            },
            "--model" => match it.next() {
                Some(name) => model_name = Some(name.clone()),
                None => {
                    fail("--model needs a name".to_string());
                    return ExitCode::from(2);
                }
            },
            flag if flag.starts_with('-') => {
                fail(format!("unknown flag {flag:?}"));
                return ExitCode::from(2);
            }
            path => artifact_path = Some(path.to_string()),
        }
    }

    let (label, compiled) = match (&artifact_path, &model_name) {
        (Some(path), _) => {
            let bytes = match std::fs::read(path) {
                Ok(bytes) => bytes,
                Err(e) => {
                    eprintln!("mmprof: {path}: {e}");
                    return ExitCode::from(2);
                }
            };
            match import_compiled(&bytes) {
                Ok(compiled) => (path.clone(), compiled),
                Err(e) => {
                    eprintln!("mmprof: {path}: artifact rejected: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        (None, name) => {
            let name = name.as_deref().unwrap_or("resnet");
            let input_hw = if smoke { 8 } else { 16 };
            match fresh_model(name, input_hw) {
                Ok(compiled) => (format!("model:{name}"), compiled),
                Err(e) => {
                    eprintln!("mmprof: {e}");
                    return ExitCode::from(2);
                }
            }
        }
    };
    let plan = match compiled.plan() {
        Some(plan) => plan,
        None => {
            eprintln!("mmprof: {label} carries no execution plan");
            return ExitCode::from(2);
        }
    };

    // Trace the profiled pass only: warmup noise stays out of the file.
    let mut rng = TensorRng::seed_from(41);
    let images: Vec<Tensor> = (0..batch)
        .map(|_| Tensor::rand_uniform(plan.input_dims(), 0.0, 1.0, &mut rng))
        .collect();
    let engine = BatchEngine::new();
    if let Err(e) = engine.run_plan(compiled.model(), plan, &images) {
        eprintln!("mmprof: warmup failed: {e}");
        return ExitCode::from(2);
    }
    mixmatch_obs::trace::enable(true);
    let (_, profile) = match engine.run_plan_profiled(compiled.model(), plan, &images) {
        Ok(run) => run,
        Err(e) => {
            eprintln!("mmprof: profiled run failed: {e}");
            return ExitCode::from(2);
        }
    };
    mixmatch_obs::trace::enable(false);

    println!(
        "=== mmprof: {label} ({} layers, {} worker threads) ===\n",
        compiled.layers().len(),
        engine.threads()
    );
    print!("{profile}");

    // Kernel dispatch visibility: the packed/dense row counters the engine
    // bumped while compiling this plan's GEMMs.
    let snapshot = mixmatch_obs::Registry::global().snapshot();
    let mut tiers: Vec<String> = Vec::new();
    for sample in &snapshot.samples {
        if sample.name == "mixmatch_kernel_rows_total" {
            if let mixmatch_obs::SampleValue::Counter(count) = sample.value {
                let tier = sample
                    .labels
                    .iter()
                    .find(|(k, _)| k == "tier")
                    .map(|(_, v)| v.as_str())
                    .unwrap_or("?");
                tiers.push(format!("{tier}={count}"));
            }
        }
    }
    if !tiers.is_empty() {
        println!("\nkernel rows compiled: {}", tiers.join(" "));
    }

    let events = mixmatch_obs::trace::drain();
    let trace = mixmatch_obs::chrome_trace(&events);
    if let Err(e) = std::fs::write(&trace_path, &trace) {
        eprintln!("mmprof: {trace_path}: {e}");
        return ExitCode::from(2);
    }
    println!(
        "wrote {trace_path} ({} trace events; open at chrome://tracing)",
        events.len()
    );
    ExitCode::SUCCESS
}
