//! Criterion micro-benchmarks for the Table I arithmetic: fixed-point
//! multiply-accumulate vs P2 single-shift vs SP2 shift-shift-add, measured on
//! the bit-exact integer kernels.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mixmatch_quant::integer::{ActQuantizer, QuantizedMatrix};
use mixmatch_quant::msq::MsqPolicy;
use mixmatch_quant::schemes::Scheme;
use mixmatch_tensor::{Tensor, TensorRng};

fn bench_mac_kernels(c: &mut Criterion) {
    let mut rng = TensorRng::seed_from(0);
    let w = Tensor::randn(&[64, 256], &mut rng);
    let act = ActQuantizer::new(4, 1.0);
    let x: Vec<u32> = (0..256).map(|_| rng.below(16) as u32).collect();
    let mut group = c.benchmark_group("gemv_64x256");
    for (name, policy) in [
        ("fixed", MsqPolicy::single(Scheme::Fixed, 4)),
        ("p2", MsqPolicy::single(Scheme::Pow2, 4)),
        ("sp2", MsqPolicy::single(Scheme::Sp2, 4)),
        ("msq_1to2", MsqPolicy::msq_optimal()),
    ] {
        let qm = QuantizedMatrix::from_float(&w, &policy);
        group.bench_function(name, |b| {
            b.iter(|| {
                let (y, _) = qm.matvec(black_box(&x), &act);
                black_box(y)
            })
        });
    }
    group.finish();
}

fn bench_activation_quantization(c: &mut Criterion) {
    let mut rng = TensorRng::seed_from(1);
    let xs: Vec<f32> = (0..4096).map(|_| rng.uniform_in(0.0, 1.0)).collect();
    let act = ActQuantizer::new(4, 1.0);
    c.bench_function("act_quantize_4096", |b| {
        b.iter(|| black_box(act.quantize(black_box(&xs))))
    });
}

criterion_group!(benches, bench_mac_kernels, bench_activation_quantization);
criterion_main!(benches);
