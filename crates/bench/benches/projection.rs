//! Criterion benchmarks for the quantization-training inner loops: codebook
//! projection, α fitting and the full row-wise MSQ projection.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mixmatch_quant::alpha::fit_alpha;
use mixmatch_quant::msq::{project_with_policy, MsqPolicy};
use mixmatch_quant::schemes::{Codebook, Scheme};
use mixmatch_tensor::{Tensor, TensorRng};

fn bench_projection(c: &mut Criterion) {
    let mut rng = TensorRng::seed_from(0);
    let xs: Vec<f32> = (0..4096).map(|_| rng.normal() * 0.1).collect();
    let mut group = c.benchmark_group("project_4096");
    for scheme in [Scheme::Fixed, Scheme::Pow2, Scheme::Sp2] {
        let cb = Codebook::new(scheme, 4);
        group.bench_function(format!("{scheme}"), |b| {
            b.iter(|| {
                let mut total = 0.0f32;
                for &x in black_box(&xs) {
                    total += cb.project(x);
                }
                black_box(total)
            })
        });
    }
    group.finish();
}

fn bench_alpha_fit(c: &mut Criterion) {
    let mut rng = TensorRng::seed_from(1);
    let xs: Vec<f32> = (0..4096).map(|_| rng.normal() * 0.1).collect();
    let cb = Codebook::new(Scheme::Sp2, 4);
    c.bench_function("fit_alpha_4096", |b| {
        b.iter(|| black_box(fit_alpha(black_box(&xs), &cb)))
    });
}

fn bench_msq_projection(c: &mut Criterion) {
    let mut rng = TensorRng::seed_from(2);
    let w = Tensor::randn(&[128, 512], &mut rng);
    let policy = MsqPolicy::msq_optimal();
    c.bench_function("msq_project_128x512", |b| {
        b.iter(|| black_box(project_with_policy(black_box(&w), &policy)))
    });
}

criterion_group!(
    benches,
    bench_projection,
    bench_alpha_fit,
    bench_msq_projection
);
criterion_main!(benches);
