//! Criterion benchmarks comparing the heterogeneous integer GEMM cores
//! against the float GEMM reference, and the cycle simulator's throughput.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mixmatch_fpga::arch::AcceleratorConfig;
use mixmatch_fpga::gemm_core::HeterogeneousGemm;
use mixmatch_fpga::sim::{simulate, SimParams};
use mixmatch_fpga::workload::Network;
use mixmatch_quant::integer::ActQuantizer;
use mixmatch_tensor::{gemm, Tensor, TensorRng};

fn bench_heterogeneous_vs_float(c: &mut Criterion) {
    let mut rng = TensorRng::seed_from(0);
    let w = Tensor::randn(&[96, 128], &mut rng);
    let core = HeterogeneousGemm::new(&w, &AcceleratorConfig::d2_3(), 4);
    let act = ActQuantizer::new(4, 1.0);
    let x: Vec<f32> = (0..128).map(|_| rng.uniform_in(0.0, 1.0)).collect();
    let xq = act.quantize(&x);
    let mut group = c.benchmark_group("gemv_96x128");
    group.bench_function("heterogeneous_integer", |b| {
        b.iter(|| black_box(core.run(black_box(&xq), &act)))
    });
    let xt = Tensor::from_vec(x.clone(), &[128, 1]).expect("column vector");
    group.bench_function("float_reference", |b| {
        b.iter(|| black_box(gemm::matmul(&w, black_box(&xt))))
    });
    group.finish();
}

fn bench_cycle_simulator(c: &mut Criterion) {
    let params = SimParams::default();
    let mut group = c.benchmark_group("cycle_sim");
    for net in [Network::resnet18(), Network::yolov3(320)] {
        let name = net.name.clone();
        group.bench_function(name, |b| {
            b.iter(|| black_box(simulate(&net, &AcceleratorConfig::d2_3(), &params)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_heterogeneous_vs_float, bench_cycle_simulator);
criterion_main!(benches);
