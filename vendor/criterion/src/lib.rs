//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness, vendored because this workspace builds without network
//! access.
//!
//! It implements the subset the `mixmatch-bench` benches use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`], [`black_box`] and the `criterion_group!` /
//! `criterion_main!` macros — with a simple adaptive wall-clock timer instead
//! of criterion's statistical machinery. Results print as
//! `name  ...  <mean time>/iter (<iters> iters)`.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Target measurement time per benchmark.
const TARGET: Duration = Duration::from_millis(250);
/// Cap on timed iterations (keeps very cheap benches from spinning).
const MAX_ITERS: u64 = 10_000;

/// Collects timing for one benchmark body.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f`, first warming up, then iterating until the measurement
    /// budget is spent.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..3 {
            black_box(f());
        }
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < TARGET && iters < MAX_ITERS {
            black_box(f());
            iters += 1;
        }
        self.iters = iters.max(1);
        self.elapsed = start.elapsed();
    }

    fn report(&self, name: &str) {
        let per_iter = self.elapsed.as_nanos() as f64 / self.iters as f64;
        let (value, unit) = if per_iter >= 1e9 {
            (per_iter / 1e9, "s")
        } else if per_iter >= 1e6 {
            (per_iter / 1e6, "ms")
        } else if per_iter >= 1e3 {
            (per_iter / 1e3, "µs")
        } else {
            (per_iter, "ns")
        };
        println!("{name:<48} {value:>9.2} {unit}/iter ({} iters)", self.iters);
    }
}

/// The benchmark driver handed to every registered function.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(&id.to_string());
        self
    }

    /// Opens a named group; member benchmarks print as `group/name`.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            prefix: name.to_string(),
            criterion: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    prefix: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.criterion
            .bench_function(format!("{}/{id}", self.prefix), f);
        self
    }

    /// Ends the group (a no-op, for API compatibility).
    pub fn finish(self) {}
}

/// Bundles benchmark functions into one runner, as criterion does.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` invoking every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("group");
        g.bench_function("inner", |b| b.iter(|| black_box(2 * 2)));
        g.finish();
    }
}
