//! Offline stand-in for the [`crossbeam`](https://crates.io/crates/crossbeam)
//! crate, vendored because this workspace builds without network access.
//!
//! Only [`scope`] is provided (the single API `mixmatch-tensor`'s parallel
//! GEMM uses), implemented on top of [`std::thread::scope`]. Semantics match
//! crossbeam's: spawned threads may borrow from the enclosing stack frame and
//! are joined before `scope` returns. One difference: a panicking child
//! thread propagates its panic at the end of the scope instead of surfacing
//! as `Err`, so the returned `Result` is always `Ok`.

use std::thread;

/// Scoped-thread handle mirroring `crossbeam::thread::Scope`.
///
/// Spawn closures receive a `&Scope` argument (crossbeam's signature), which
/// permits nested spawns.
#[derive(Clone, Copy)]
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread; the closure receives this scope so it can
    /// spawn further threads.
    pub fn spawn<F, T>(&self, f: F) -> thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let scope = *self;
        self.inner.spawn(move || f(&scope))
    }
}

/// Creates a scope in which threads borrowing local data can be spawned; all
/// threads are joined before it returns.
pub fn scope<'env, F, R>(f: F) -> thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let mut out = vec![0u64; 4];
        super::scope(|scope| {
            for (i, slot) in out.iter_mut().enumerate() {
                scope.spawn(move |_| *slot = data[i] * 10);
            }
        })
        .expect("scope");
        assert_eq!(out, vec![10, 20, 30, 40]);
    }
}
