//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate,
//! vendored because this workspace builds without network access.
//!
//! Implements the subset `mixmatch-tensor`'s RNG facade uses: the
//! [`RngCore`] / [`SeedableRng`] / [`Rng`] traits and a deterministic
//! [`rngs::StdRng`]. The generator is xoshiro256++ seeded via splitmix64 —
//! not bit-compatible with upstream `rand`'s ChaCha12 `StdRng`, but every
//! consumer in this workspace only relies on *determinism per seed*, which
//! holds.

use std::fmt;
use std::ops::Range;

/// Error type for fallible RNG operations (never produced here; exists for
/// API compatibility).
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("rng error")
    }
}

impl std::error::Error for Error {}

/// A source of random 32/64-bit words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
    /// Fallible [`RngCore::fill_bytes`]; infallible in this stand-in.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

/// RNGs constructible from seeds.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their "standard" domain (`[0, 1)` for
/// floats, full range for integers).
pub trait SampleStandard {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        // 24 high bits → uniform in [0, 1) with full f32 mantissa coverage.
        (rng.next_u32() >> 8) as f32 / (1u32 << 24) as f32
    }
}

impl SampleStandard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl SampleStandard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl SampleStandard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl SampleStandard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

/// Types samplable uniformly from a half-open range.
pub trait SampleRangeable: Sized {
    /// Draws one value from `range` using `rng`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRangeable for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<$t>) -> $t {
                assert!(range.start < range.end, "empty sample range");
                let span = (range.end as i128 - range.start as i128) as u64;
                (range.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRangeable for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<$t>) -> $t {
                assert!(range.start < range.end, "empty sample range");
                range.start + (range.end - range.start) * <$t as SampleStandard>::sample(rng)
            }
        }
    )*};
}
float_sample_range!(f32, f64);

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample over `T`'s standard domain.
    fn gen<T: SampleStandard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform sample from a half-open range.
    fn gen_range<T: SampleRangeable>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for rand's ChaCha12
    /// `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_streams_reproduce() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_f32_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f32 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            assert!(rng.gen_range(0..13usize) < 13);
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 11];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
