//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate, vendored because this workspace builds without network access.
//!
//! It covers exactly the surface the mixmatch test-suites use:
//!
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` inner attribute;
//! * [`prop_assert!`] / [`prop_assert_eq!`];
//! * range strategies (`0u64..500`, `-1.5f32..1.5`, …) and
//!   [`collection::vec`].
//!
//! Unlike real proptest there is no shrinking: a failing case panics with the
//! sampled arguments so it can be reproduced by eye. Sampling is fully
//! deterministic per test function (seeded from the test's module path), so
//! test runs are stable across invocations and machines.

pub mod test_runner {
    //! Config, error and RNG types used by the generated test harness.

    use std::fmt;

    /// Per-test configuration (the `cases` knob is the only one honoured).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct ProptestConfig {
        /// Number of sampled cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Configuration running `cases` sampled cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 32 }
        }
    }

    /// Failure raised by `prop_assert!`-style macros.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(pub String);

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl std::error::Error for TestCaseError {}

    /// Deterministic splitmix64 generator behind all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from an arbitrary label (e.g. the test path).
        pub fn deterministic(label: &str) -> Self {
            // FNV-1a over the label gives a stable, well-mixed seed.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in label.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next raw 64-bit sample (splitmix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform sample in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait: something that can draw a value from the RNG.

    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A value generator. The stand-in has no shrinking, so a strategy is
    /// just a sampling function.
    pub trait Strategy {
        /// The generated value type.
        type Value;
        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! signed_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i64 - self.start as i64) as u64;
                    (self.start as i64 + (rng.next_u64() % span) as i64) as $t
                }
            }
        )*};
    }
    signed_range_strategy!(i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (self.end - self.start) * rng.next_f64() as $t
                }
            }
        )*};
    }
    float_range_strategy!(f32, f64);
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy producing `Vec`s of `element` with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod option {
    //! Option strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing `None` half the time, `Some(inner)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 1 == 0 {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests. Each function is expanded into a `#[test]` that
/// samples its arguments from the given strategies for `cases` iterations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr;
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for case in 0..config.cases {
                    $(let $arg =
                        $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                    let sampled = format!(
                        concat!($(stringify!($arg), " = {:?}, "),+),
                        $(&$arg),+
                    );
                    let outcome = (move || -> ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest case {case} failed: {e}\n  inputs: {sampled}"
                        );
                    }
                }
            }
        )*
    };
}

/// Skips the current case when its sampled inputs don't satisfy a
/// precondition. (Real proptest re-draws; the stand-in counts the case as
/// passed, which is sound because sampling is unconditional and uniform.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the case (with
/// the sampled inputs) instead of unwinding immediately.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let lhs = $lhs;
        let rhs = $rhs;
        $crate::prop_assert!(
            lhs == rhs,
            "assertion failed: {} == {} ({lhs:?} vs {rhs:?})",
            stringify!($lhs),
            stringify!($rhs)
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let lhs = $lhs;
        let rhs = $rhs;
        $crate::prop_assert!(lhs == rhs, $($fmt)*);
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {{
        let lhs = $lhs;
        let rhs = $rhs;
        $crate::prop_assert!(
            lhs != rhs,
            "assertion failed: {} != {} (both {lhs:?})",
            stringify!($lhs),
            stringify!($rhs)
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn int_ranges_stay_in_bounds(x in 3u32..17, y in -5i32..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..5).contains(&y));
        }

        #[test]
        fn float_ranges_stay_in_bounds(x in -1.5f32..1.5) {
            prop_assert!((-1.5..1.5).contains(&x));
        }

        #[test]
        fn vecs_respect_size_range(v in crate::collection::vec(0u64..10, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6, "len {}", v.len());
            prop_assert!(v.iter().all(|&e| e < 10));
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let mut a = crate::test_runner::TestRng::deterministic("same-label");
        let mut b = crate::test_runner::TestRng::deterministic("same-label");
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
