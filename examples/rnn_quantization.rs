//! RNN quantization: an LSTM language model on the PTB stand-in corpus,
//! trained float then MSQ-quantized, reporting perplexity — the Table VI
//! pipeline in miniature.
//!
//! Run with: `cargo run --release --example rnn_quantization`

use mixmatch::data::sequences::{MarkovTextConfig, MarkovTextCorpus};
use mixmatch::nn::loss::{cross_entropy, perplexity};
use mixmatch::nn::models::LstmLanguageModel;
use mixmatch::nn::optim::Adam;
use mixmatch::prelude::*;

fn valid_ppl(lm: &mut LstmLanguageModel, corpus: &MarkovTextCorpus) -> f32 {
    let mut nll = 0.0f32;
    let mut n = 0usize;
    for (tokens, targets) in MarkovTextCorpus::batches(corpus.valid(), 16, 8) {
        let logits = lm.forward_tokens(&tokens, false);
        let (loss, _) = cross_entropy(&logits, &targets);
        nll += loss * targets.len() as f32;
        n += targets.len();
    }
    perplexity(nll / n.max(1) as f32)
}

fn main() {
    let cfg = MarkovTextConfig::ptb_like();
    let corpus = MarkovTextCorpus::generate(&cfg);
    println!(
        "PTB stand-in: vocab {}, {} train tokens, oracle perplexity {:.2}\n",
        cfg.vocab,
        corpus.train().len(),
        corpus.oracle_perplexity()
    );
    let mut rng = TensorRng::seed_from(3);
    let mut lm = LstmLanguageModel::new(cfg.vocab, 24, 48, 2, &mut rng);
    let mut opt = Adam::new(3e-3);
    // The token-driven LSTM owns its own training loop, so the pipeline
    // hands out its ADMM quantizer and packages the model afterwards.
    let pipeline = QuantPipeline::for_device(FpgaDevice::XC7Z045);
    let mut quant = pipeline.admm_quantizer(&lm.params());
    println!(
        "quantizing {} weight matrices: {:?}\n",
        quant.target_names().len(),
        quant.target_names()
    );
    let epochs = 12;
    for epoch in 0..epochs {
        quant.epoch_update(&mut lm.params_mut());
        let mut train_loss = 0.0f32;
        let mut batches = 0usize;
        for (tokens, targets) in MarkovTextCorpus::batches(corpus.train(), 16, 8) {
            let logits = lm.forward_tokens(&tokens, true);
            let (loss, grad) = cross_entropy(&logits, &targets);
            lm.backward_tokens(&grad, 16, 8);
            quant.penalty_grads(&mut lm.params_mut());
            opt.step(&mut lm.params_mut());
            lm.zero_grad();
            train_loss += loss;
            batches += 1;
        }
        println!(
            "epoch {epoch:>2}: train loss {:.3}  residual {:.4}",
            train_loss / batches as f32,
            quant.mean_residual(&lm.params())
        );
    }
    let ppl_before_projection = valid_ppl(&mut lm, &corpus);
    drop(quant);
    let quantized = pipeline.quantize(&mut lm).expect("pipeline");
    let ppl_after = valid_ppl(&mut lm, &corpus);
    println!("\nvalidation perplexity: {ppl_before_projection:.2} (soft) -> {ppl_after:.2} (hard-projected 4-bit)");
    println!("{}", quantized.report());
    println!("\n(The oracle perplexity above is the information-theoretic floor of the");
    println!(" synthetic corpus — a sanity anchor the quantized model should approach.)");
}
