//! Object detection under quantization: the YOLO-style grid detector on
//! synthetic multi-object scenes, float vs MSQ, with mAP reporting — the
//! Table V pipeline in miniature.
//!
//! Run with: `cargo run --release --example object_detection`

use mixmatch::data::detection::{DetectionConfig, DetectionDataset};
use mixmatch::data::BatchIter;
use mixmatch::nn::metrics::{map_coco, mean_average_precision, nms, DetBox};
use mixmatch::nn::models::{YoloConfig, YoloDetector, YoloTarget};
use mixmatch::nn::optim::{LrSchedule, Sgd};
use mixmatch::prelude::*;

fn main() {
    let dcfg = DetectionConfig::coco_like(32);
    let ds = DetectionDataset::generate(&dcfg);
    println!(
        "COCO stand-in: {} classes, {} train / {} test scenes at {}x{}\n",
        dcfg.classes,
        ds.train_len(),
        ds.test_len(),
        dcfg.image_size,
        dcfg.image_size
    );
    for (label, policy) in [
        ("Baseline (FP)", None),
        ("MSQ 1:2, 4-bit", Some(MsqPolicy::msq_optimal())),
    ] {
        let mut rng = TensorRng::seed_from(19);
        let mut ycfg = YoloConfig::mini(dcfg.classes);
        if policy.is_some() {
            ycfg = ycfg.with_act_bits(4);
        }
        let mut model = YoloDetector::new(ycfg, &mut rng);
        // The detection loss needs a custom loop, so the pipeline hands out
        // its ADMM quantizer and finishes with `quantize` afterwards.
        let pipeline = policy.map(QuantPipeline::from_policy);
        let mut quant = pipeline.as_ref().map(|p| p.admm_quantizer(&model.params()));
        let epochs = 30;
        let mut opt = Sgd::with_config(
            0.1,
            0.9,
            1e-4,
            LrSchedule::Cosine {
                total_epochs: epochs,
                min_lr: 1e-3,
            },
        );
        let mut data_rng = rng.fork();
        for epoch in 0..epochs {
            opt.start_epoch(epoch);
            if let Some(q) = &mut quant {
                q.epoch_update(&mut model.params_mut());
            }
            for idx in BatchIter::shuffled(ds.train_len(), 8, false, &mut data_rng) {
                let (x, objs) = ds.train_batch(&idx);
                let targets: Vec<Vec<YoloTarget>> = objs
                    .iter()
                    .map(|scene| {
                        scene
                            .iter()
                            .map(|o| YoloTarget {
                                cx: o.cx,
                                cy: o.cy,
                                w: o.w,
                                h: o.h,
                                class: o.class,
                            })
                            .collect()
                    })
                    .collect();
                let raw = model.forward(&x, true);
                let (_, grad) = model.loss(&raw, &targets);
                model.backward(&grad);
                if let Some(q) = &quant {
                    q.penalty_grads(&mut model.params_mut());
                }
                opt.step(&mut model.params_mut());
                model.zero_grad();
            }
        }
        drop(quant.take());
        if let Some(p) = pipeline {
            // Hard projection + deployment packaging in one call; the report
            // confirms every head/backbone conv landed on its scheme grid.
            let quantized = p.quantize(&mut model).expect("pipeline");
            println!(
                "  [{}] {} conv layers quantized, {:.1}x packed compression",
                label,
                quantized.layers().len(),
                quantized.compression_rate()
            );
        }
        // Evaluate mAP on the test split.
        let (x, objs) = ds.test_all();
        let raw = model.forward(&x, false);
        let preds: Vec<Vec<DetBox>> = model
            .decode(&raw, 0.3)
            .into_iter()
            .map(|b| nms(b, 0.45))
            .collect();
        let gts: Vec<Vec<DetBox>> = objs
            .iter()
            .map(|scene| {
                scene
                    .iter()
                    .map(|o| DetBox {
                        cx: o.cx,
                        cy: o.cy,
                        w: o.w,
                        h: o.h,
                        score: 1.0,
                        class: o.class,
                    })
                    .collect()
            })
            .collect();
        println!(
            "{label:<16} mAP@0.5 {:.1}   mAP@0.5:0.95 {:.1}",
            100.0 * mean_average_precision(&preds, &gts, dcfg.classes, 0.5),
            100.0 * map_coco(&preds, &gts, dcfg.classes)
        );
    }
    println!("\nExpected: MSQ stays within a few mAP points of float (Table V shape).");
}
