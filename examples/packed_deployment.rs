//! Packed deployment: quantize a trained layer, serialise it into the 4-bit
//! nibble format, measure the compression rate, and verify the unpacked
//! matrix reproduces the exact integer inference results — the paper's
//! "8× compression" and bit-exactness claims in one script.
//!
//! Run with: `cargo run --release --example packed_deployment`

use mixmatch::prelude::*;
use mixmatch::quant::export::compression_rate;
use mixmatch::quant::integer::{ActQuantizer, QuantizedMatrix};

fn main() {
    let mut rng = TensorRng::seed_from(4);
    // Stand-in for a trained ResNet layer3 conv: [256 filters, 1152 inputs].
    let w = Tensor::randn(&[256, 1152], &mut rng);
    let policy = MsqPolicy::msq_optimal();
    let qm = QuantizedMatrix::from_float(&w, &policy);
    let packed = qm.pack();

    let float_bytes = w.len() * 4;
    println!("layer: 256x1152 weights");
    println!("  float32:      {:>9} bytes", float_bytes);
    println!(
        "  packed 4-bit: {:>9} bytes ({} code bytes + per-row scheme/alpha)",
        packed.byte_size(),
        packed.data_len()
    );
    println!(
        "  compression:  {:.2}x measured, {:.2}x analytic (paper: 8x)",
        float_bytes as f32 / packed.byte_size() as f32,
        compression_rate(256, 1152)
    );

    // Round-trip and verify inference equality on integer activations.
    let restored = packed.unpack().expect("packed stream is well-formed");
    let act = ActQuantizer::new(4, 1.0);
    let x: Vec<f32> = (0..1152).map(|i| ((i * 37) % 100) as f32 / 100.0).collect();
    let xq = act.quantize(&x);
    let (y0, ops) = qm.matvec(&xq, &act);
    let (y1, _) = restored.matvec(&xq, &act);
    assert_eq!(y0, y1, "unpacked matrix must be bit-identical");
    println!("\nround-trip inference: identical across {} outputs", y0.len());
    println!(
        "op census: {} DSP multiplies, {} shifts, {} adds (SP2 rows run multiplier-free)",
        ops.mults, ops.shifts, ops.adds
    );
}
