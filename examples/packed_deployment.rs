//! Packed deployment: let the pipeline derive the XC7Z045 policy, quantize a
//! trained-layer stand-in, and verify the serialized 4-bit artifact — the
//! paper's "8× compression" and bit-exactness claims in one script, with the
//! partition ratio coming from hardware characterization instead of a
//! hard-coded constant. The finale serializes the whole `CompiledModel`
//! (execution plan + packed weights) and restores it into a runnable
//! artifact with bit-identical outputs.
//!
//! Run with: `cargo run --release --example packed_deployment`

use mixmatch::nn::layers::Linear;
use mixmatch::nn::module::Sequential;
use mixmatch::prelude::*;
use mixmatch::quant::engine::BatchEngine;
use mixmatch::quant::export::{compression_rate, export_compiled, import_compiled};
use mixmatch::quant::integer::ActQuantizer;
use mixmatch::tensor::Tensor;

fn main() {
    let mut rng = TensorRng::seed_from(4);
    // Stand-in for a trained ResNet layer3 conv: [256 filters, 1152 inputs].
    let mut model = Sequential::new();
    model.push(Linear::with_name("layer3.conv", 1152, 256, false, &mut rng));

    let quantized = QuantPipeline::for_device(FpgaDevice::XC7Z045)
        .with_act_quantizer(ActQuantizer::new(4, 1.0))
        .quantize(&mut model)
        .expect("pipeline");
    let layer = quantized.layer("layer3.conv.weight").expect("layer");
    let packed = layer.packed.as_ref().expect("4-bit layers pack");

    let float_bytes = 256 * 1152 * 4;
    println!(
        "layer: 256x1152 weights under the derived {} policy",
        quantized.label()
    );
    println!("  float32:      {:>9} bytes", float_bytes);
    println!(
        "  packed 4-bit: {:>9} bytes ({} code bytes + per-row scheme/alpha)",
        packed.byte_size(),
        packed.data_len()
    );
    println!(
        "  compression:  {:.2}x measured, {:.2}x analytic (paper: 8x)",
        quantized.compression_rate(),
        compression_rate(256, 1152)
    );

    // Round-trip and verify inference equality on integer activations.
    let restored = packed.unpack().expect("packed stream is well-formed");
    let qm = layer.matrix();
    let act = *quantized.act_quantizer();
    let x: Vec<f32> = (0..1152).map(|i| ((i * 37) % 100) as f32 / 100.0).collect();
    let xq = act.quantize(&x);
    let (y0, ops) = qm.matvec(&xq, &act);
    let (y1, _) = restored.matvec(&xq, &act);
    assert_eq!(y0, y1, "unpacked matrix must be bit-identical");
    println!(
        "\nround-trip inference: identical across {} outputs",
        y0.len()
    );
    println!(
        "op census: {} DSP multiplies, {} shifts, {} adds (SP2 rows run multiplier-free)",
        ops.mults, ops.shifts, ops.adds
    );

    // One loadable artifact: execution plan + packed weights. A deployment
    // host imports it and serves without ever seeing the float model.
    let artifact = export_compiled(&quantized).expect("export compiled model");
    let restored = import_compiled(&artifact).expect("import compiled model");
    let engine = BatchEngine::new();
    let input = Tensor::from_vec(x, &[1152]).expect("input vector");
    let served = engine
        .run_plan_batch(&restored, &[input])
        .expect("serve from restored artifact");
    assert_eq!(
        served.outputs[0].as_slice(),
        &y0[..],
        "restored artifact must serve bit-identically"
    );
    println!(
        "\ncompiled artifact: {} bytes (plan + packed weights), restored and served bit-identically",
        artifact.len()
    );
}
