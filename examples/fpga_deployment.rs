//! FPGA deployment walkthrough: device comparison, design-space exploration,
//! resource estimates and simulated end-to-end performance for every
//! Table VIII workload.
//!
//! Run with: `cargo run --release --example fpga_deployment`

use mixmatch::fpga::cost::CostModel;
use mixmatch::fpga::explore::{sweep, ExploreConfig};
use mixmatch::fpga::report::{fmt_pct, TextTable};
use mixmatch::fpga::sim::{simulate, SimParams};
use mixmatch::fpga::workload::Network;
use mixmatch::prelude::*;

fn main() {
    // Which device class suits the SP2 trick? High LUT/DSP parts.
    println!("device characterization (Figure 2):\n");
    let mut t = TextTable::new(vec!["device", "LUT/DSP", "suitability for SP2 core"]);
    for dev in FpgaDevice::figure2_devices() {
        let verdict = if dev.lut_per_dsp() > 180.0 {
            "good — LUT headroom for shift-add PEs"
        } else {
            "poor — DSP-rich, keep fixed-point"
        };
        t.row(vec![
            dev.name.to_string(),
            format!("{:.1}", dev.lut_per_dsp()),
            verdict.to_string(),
        ]);
    }
    println!("{}", t.render());

    for device in [FpgaDevice::XC7Z020, FpgaDevice::XC7Z045] {
        println!("--- {device} ---\n");
        println!("DSE sweep:");
        for p in sweep(device, &ExploreConfig::default()) {
            println!(
                "  Blk_out,sp2 = {:>2}  LUT {}  {}",
                p.config.blk_out_sp2,
                fmt_pct(p.lut_util),
                if p.feasible { "ok" } else { "over ceiling" }
            );
        }
        // FpgaTarget is the pipeline anchor: the explored design *is* the
        // MsqPolicy handed to QuantPipeline::for_device(device).
        let target = FpgaTarget::new(device);
        let design = target.design;
        let policy = target.derive_policy();
        let model = CostModel::for_device(&device);
        let usage = model.usage(&design);
        println!(
            "\noptimal: {} | LUT {:.0} DSP {:.0} BRAM {:.1} FF {:.0} | peak {:.1} GOPS",
            design.ratio_label(),
            usage.lut,
            usage.dsp,
            usage.bram36,
            usage.ff,
            design.peak_gops()
        );
        println!(
            "derived pipeline policy: {:?} at {} bits\n",
            policy.choice, policy.bits
        );
        let params = SimParams::default();
        let mut t = TextTable::new(vec!["workload", "GOPS", "latency", "PE util", "FPS"]);
        for net in Network::table8_networks() {
            let perf = simulate(&net, &design, &params);
            t.row(vec![
                net.name.clone(),
                format!("{:.1}", perf.gops()),
                format!("{:.1} ms", perf.latency_ms()),
                fmt_pct(perf.pe_utilization()),
                format!("{:.1}", perf.fps()),
            ]);
        }
        println!("{}", t.render());
    }
}
