//! Image classification under every quantization scheme — a miniature
//! Table II on the CIFAR10 stand-in.
//!
//! Trains the ResNet stand-in as: float baseline, P2, Fixed, SP2, and MSQ at
//! the half/half and optimal ratios — each quantized run through one
//! `QuantPipeline` chain — and prints the accuracy ladder.
//!
//! Run with: `cargo run --release --example image_classification`

use mixmatch::data::{BatchIter, ImageDataset, SynthImageConfig};
use mixmatch::nn::models::{ResNet, ResNetConfig};
use mixmatch::prelude::*;
use mixmatch::quant::qat::{evaluate_classifier, train_classifier, QatConfig};

fn run(ds: &ImageDataset, policy: Option<MsqPolicy>, seed: u64) -> f32 {
    let mut rng = TensorRng::seed_from(seed);
    let mut cfg = ResNetConfig::mini(ds.config().classes);
    if policy.is_some() {
        cfg = cfg.with_act_bits(4);
    }
    let mut model = ResNet::new(cfg, &mut rng);
    let mut data_rng = rng.fork();
    let batches = |data_rng: &mut TensorRng| {
        BatchIter::shuffled(ds.train_len(), 32, false, data_rng)
            .map(|idx| ds.train_batch(&idx))
            .collect::<Vec<_>>()
    };
    match policy {
        None => {
            let _ = train_classifier(
                &mut model,
                |_| batches(&mut data_rng),
                &QatConfig::float_baseline(10, 0.05),
            );
        }
        Some(p) => {
            let _ = QuantPipeline::from_policy(p)
                .with_qat(QatConfig::quantized(p, 10, 0.05))
                .train_and_quantize(&mut model, |_| batches(&mut data_rng))
                .expect("pipeline");
        }
    }
    let (x, y) = ds.test_all();
    evaluate_classifier(&mut model, &x, &y).top1
}

fn main() {
    println!("mini Table II on the CIFAR10 stand-in (ResNet mini, W/A = 4/4)\n");
    let ds = ImageDataset::generate(&SynthImageConfig::cifar10_like());
    let baseline = run(&ds, None, 7);
    println!("{:<18} top-1 {:>6.2}%", "Baseline (FP)", baseline);
    for (label, policy) in [
        ("P2", MsqPolicy::single(Scheme::Pow2, 4)),
        ("Fixed", MsqPolicy::single(Scheme::Fixed, 4)),
        ("SP2", MsqPolicy::single(Scheme::Sp2, 4)),
        ("MSQ (half/half)", MsqPolicy::msq_half()),
        ("MSQ (optimal)", MsqPolicy::msq_optimal()),
    ] {
        let top1 = run(&ds, Some(policy), 7);
        println!(
            "{:<18} top-1 {:>6.2}%  (delta {:+.2})",
            label,
            top1,
            top1 - baseline
        );
    }
    println!("\nExpected shape: P2 trails; Fixed ≈ SP2 ≈ baseline; MSQ at the top.");
}
