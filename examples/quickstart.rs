//! Quickstart: the full Mix-and-Match pipeline in one chain.
//!
//! `QuantPipeline` closes the paper's loop from a single entry point:
//!
//! 1. `for_device` characterises the target FPGA → SP2:fixed partition ratio
//!    → `MsqPolicy` (§V-A).
//! 2. `train_and_quantize` runs MSQ quantization-aware training (ADMM weight
//!    quantization + 4-bit STE activations) at that ratio (Algorithms 1–2).
//! 3. The returned `CompiledModel` owns the bit-exact integer deployment
//!    forms, packed weights *and* the compiled `ExecutionPlan`; `.report()`
//!    feeds the cycle simulator and `BatchEngine::run_plan_batch` serves
//!    raw images end-to-end from the same artifact.
//!
//! Run with: `cargo run --release --example quickstart`

use mixmatch::data::{BatchIter, ImageDataset, SynthImageConfig};
use mixmatch::fpga::gemm_core::HeterogeneousGemm;
use mixmatch::fpga::sim::{simulate, SimParams};
use mixmatch::fpga::workload::Network;
use mixmatch::nn::models::{ResNet, ResNetConfig};
use mixmatch::prelude::*;
use mixmatch::quant::engine::BatchEngine;
use mixmatch::quant::integer::ActQuantizer;
use mixmatch::quant::qat::evaluate_classifier;
use mixmatch::tensor::Tensor;

fn main() {
    // ------------------------------------------------------------------
    // One pipeline: device characterization → MSQ training → deployment.
    // ------------------------------------------------------------------
    let device = FpgaDevice::XC7Z045;
    let target = FpgaTarget::new(device).with_input_size(16);
    let design = target.design;
    let pipeline = QuantPipeline::for_device(target).with_qat(QatConfig::quantized(
        MsqPolicy::msq_optimal(),
        8,
        0.05,
    ));
    println!(
        "[1] DSE on {}: optimal design {} -> PR_SP2 = {:.3}",
        device.name,
        design.ratio_label(),
        design.partition_ratio().sp2_fraction()
    );

    let mut rng = TensorRng::seed_from(42);
    let ds = ImageDataset::generate(&SynthImageConfig::cifar10_like());
    let mut model = ResNet::new(
        ResNetConfig::mini(ds.config().classes).with_act_bits(4),
        &mut rng,
    );
    let mut data_rng = rng.fork();
    let quantized = pipeline
        .train_and_quantize(&mut model, |_| {
            BatchIter::shuffled(ds.train_len(), 32, false, &mut data_rng)
                .map(|idx| ds.train_batch(&idx))
                .collect()
        })
        .expect("pipeline");

    let (x_test, y_test) = ds.test_all();
    let eval = evaluate_classifier(&mut model, &x_test, &y_test);
    println!(
        "[2] MSQ-trained mini-ResNet: top-1 {:.1}% (residual {:.4} -> {:.4})",
        eval.top1,
        quantized.logs().first().map(|l| l.residual).unwrap_or(0.0),
        quantized.logs().last().map(|l| l.residual).unwrap_or(0.0),
    );
    println!("{}", quantized.report());

    // ------------------------------------------------------------------
    // The same integer arithmetic on the heterogeneous GEMM cores.
    // ------------------------------------------------------------------
    let stem = quantized.layer("stem.weight").expect("stem layer");
    let first_conv = stem.matrix().to_float();
    let core = HeterogeneousGemm::new(&first_conv, &design, 4);
    let (n_fixed, n_sp2) = core.row_split();
    let act = ActQuantizer::new(4, 1.0);
    let x: Vec<f32> = (0..first_conv.dims()[1])
        .map(|i| (i % 7) as f32 / 7.0)
        .collect();
    let run = core.run(&act.quantize(&x), &act);
    println!(
        "[3] heterogeneous GEMM on stem conv: {} fixed rows (DSP, {} mults), {} SP2 rows (LUT, {} shifts + {} adds)",
        n_fixed, run.fixed_ops.mults, n_sp2, run.sp2_ops.shifts, run.sp2_ops.adds
    );

    let perf = simulate(&Network::resnet18(), &design, &SimParams::default());
    println!(
        "    full-size ResNet-18 on this design: {:.1} GOPS, {:.1} ms/image, {:.1}% PE utilization",
        perf.gops(),
        perf.latency_ms(),
        perf.pe_utilization() * 100.0
    );
    // ------------------------------------------------------------------
    // End-to-end serving: raw images -> logits through the compiled plan.
    // ------------------------------------------------------------------
    let plan = quantized.plan().expect("resnet compiles to a plan");
    let chw: usize = plan.input_dims().iter().product();
    let images: Vec<Tensor> = (0..4)
        .map(|i| {
            Tensor::from_vec(
                x_test.as_slice()[i * chw..(i + 1) * chw].to_vec(),
                plan.input_dims(),
            )
            .expect("test image shape")
        })
        .collect();
    let engine = BatchEngine::new();
    let run = engine
        .run_plan_batch(&quantized, &images)
        .expect("plan batch");
    let predictions: Vec<usize> = run.outputs.iter().map(|o| o.argmax()).collect();
    println!(
        "[4] compiled-plan serving: {} steps over {} arena buffers, {} images -> predicted classes {:?} (labels {:?})",
        plan.steps().len(),
        plan.buffer_count(),
        images.len(),
        predictions,
        &y_test[..4],
    );

    println!("\nDone: ratio from hardware, accuracy from training, speed from both.");
}
