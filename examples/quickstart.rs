//! Quickstart: the full Mix-and-Match pipeline in one file.
//!
//! 1. Characterise the target FPGA → SP2:fixed partition ratio.
//! 2. Train a small CNN with MSQ (ADMM weight quantization + 4-bit STE
//!    activations) at that ratio.
//! 3. Deploy: encode weights as hardware codes, run bit-exact shift/add
//!    inference, and estimate on-device throughput with the cycle simulator.
//!
//! Run with: `cargo run --release --example quickstart`

use mixmatch::prelude::*;
use mixmatch::data::{BatchIter, ImageDataset, SynthImageConfig};
use mixmatch::fpga::explore::{optimal_design, ExploreConfig};
use mixmatch::fpga::gemm_core::HeterogeneousGemm;
use mixmatch::fpga::sim::{simulate, SimParams};
use mixmatch::fpga::workload::Network;
use mixmatch::nn::models::{ResNet, ResNetConfig};
use mixmatch::quant::integer::ActQuantizer;
use mixmatch::quant::qat::{evaluate_classifier, train_classifier, QatConfig};

fn main() {
    // ------------------------------------------------------------------
    // Step 1: hardware characterization picks the ratio (paper §V-A).
    // ------------------------------------------------------------------
    let device = FpgaDevice::XC7Z045;
    let design = optimal_design(device, &ExploreConfig::default());
    println!(
        "[1] DSE on {}: optimal design {} -> PR_SP2 = {:.3}",
        device.name,
        design.ratio_label(),
        design.partition_ratio().sp2_fraction()
    );

    // ------------------------------------------------------------------
    // Step 2: MSQ quantization-aware training at that ratio (Algorithms 1-2).
    // ------------------------------------------------------------------
    let mut rng = TensorRng::seed_from(42);
    let ds = ImageDataset::generate(&SynthImageConfig::cifar10_like());
    let policy = MsqPolicy::mixed(design.partition_ratio(), 4);
    let mut model = ResNet::new(
        ResNetConfig::mini(ds.config().classes).with_act_bits(4),
        &mut rng,
    );
    let mut data_rng = rng.fork();
    let outcome = train_classifier(
        &mut model,
        |_| {
            BatchIter::shuffled(ds.train_len(), 32, false, &mut data_rng)
                .map(|idx| ds.train_batch(&idx))
                .collect()
        },
        &QatConfig::quantized(policy, 8, 0.05),
    );
    let (x_test, y_test) = ds.test_all();
    let eval = evaluate_classifier(&mut model, &x_test, &y_test);
    println!(
        "[2] MSQ-trained mini-ResNet: top-1 {:.1}% (residual {:.4} -> {:.4})",
        eval.top1,
        outcome.logs.first().map(|l| l.residual).unwrap_or(0.0),
        outcome.logs.last().map(|l| l.residual).unwrap_or(0.0),
    );
    for report in &outcome.reports {
        println!(
            "    {:<24} rows {}  SP2 fraction {:.2}  mean MSE {:.2e}",
            report.name,
            report.rows.len(),
            report.sp2_fraction(),
            report.mean_mse()
        );
    }

    // ------------------------------------------------------------------
    // Step 3: deployment — bit-exact integer inference + performance model.
    // ------------------------------------------------------------------
    let first_conv = model
        .params()
        .into_iter()
        .find(|p| p.name() == "stem.weight")
        .expect("stem weight")
        .value
        .clone();
    let core = HeterogeneousGemm::new(&first_conv, &design, 4);
    let (n_fixed, n_sp2) = core.row_split();
    let act = ActQuantizer::new(4, 1.0);
    let x: Vec<f32> = (0..first_conv.dims()[1])
        .map(|i| (i % 7) as f32 / 7.0)
        .collect();
    let run = core.run(&act.quantize(&x), &act);
    println!(
        "[3] heterogeneous GEMM on stem conv: {} fixed rows (DSP, {} mults), {} SP2 rows (LUT, {} shifts + {} adds)",
        n_fixed, run.fixed_ops.mults, n_sp2, run.sp2_ops.shifts, run.sp2_ops.adds
    );

    let perf = simulate(&Network::resnet18(), &design, &SimParams::default());
    println!(
        "    full-size ResNet-18 on this design: {:.1} GOPS, {:.1} ms/image, {:.1}% PE utilization",
        perf.gops(),
        perf.latency_ms(),
        perf.pe_utilization() * 100.0
    );
    println!("\nDone: ratio from hardware, accuracy from training, speed from both.");
}
